"""Fault tolerance of the allreduce collective backend.

The collective tier has no PS to absorb failures: a crash removes a rank
from a barrier-synchronized ring, so the recovery story is *elastic
shrink* — abort the in-flight operation, rebuild the ring over the
survivors, rescale the 2(N-1)/N traffic factor and resend — and a lost
chunk retransmits on its own link without releasing the step barrier.
These tests pin those semantics end to end: byte conservation on the
shrunk ring, permanent removal (the rejoin door is one-way), watchdog
straggler detection under a deep flap, and the hierarchical topology's
flat-ring degrade.
"""

from dataclasses import replace

import pytest

from repro.cluster.trainer import Trainer, run_training
from repro.faults.plan import FaultPlan, LinkFlap, MessageDrops, WorkerCrash
from repro.workloads.presets import fifo_factory, prophet_factory


@pytest.fixture(scope="module")
def ring_config_module():
    # Module-scoped 4-worker twin of the conftest ``tiny_config``, on the
    # ring allreduce backend.
    from repro.agg.policies import ExplicitGroupsPolicy
    from repro.config import TrainingConfig
    from repro.models.device import DeviceSpec
    from repro.net.tcp import TCPParams
    from repro.quantities import Gbps
    from tests.conftest import TINY_MODEL_NAME

    return TrainingConfig(
        model=TINY_MODEL_NAME,
        batch_size=8,
        n_workers=4,
        n_iterations=6,
        bandwidth=1 * Gbps,
        tcp=TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=0.8),
        device=DeviceSpec(name="test-gpu", peak_flops=4e12, efficiency=0.25),
        agg_policy=ExplicitGroupsPolicy(((5, 6, 7), (3, 4), (2,), (0, 1))),
        seed=7,
        jitter_std=0.01,
        backend="allreduce",
        collective="ring",
    )


@pytest.fixture(scope="module")
def clean_ring(ring_config_module):
    return run_training(ring_config_module, fifo_factory())


def _survivor_iteration_counts(result, config, crashed):
    return {
        w: len(result.recorder.worker_iterations(w))
        for w in range(config.n_workers)
        if w != crashed
    }


class TestElasticShrink:
    def test_crash_before_first_allreduce_conserves_shrunk_ring_bytes(
        self, ring_config_module
    ):
        """Satellite bar: an N-worker ring that loses one rank immediately
        must run the whole job on the survivors' ring, each surviving link
        carrying exactly 2(N-2)/(N-1) of the model bytes per iteration."""
        config = replace(
            ring_config_module,
            faults=FaultPlan(
                crashes=[WorkerCrash(worker=1, at=1e-9, restart_after=0.05)]
            ),
        )
        result = run_training(config, fifo_factory())

        n = config.n_workers
        survivors = n - 1
        factor = 2.0 * (survivors - 1) / survivors  # == 2(N-2)/(N-1)
        model_bytes = float(result.gen_schedule.sizes.sum())
        per_link = factor * model_bytes * config.n_iterations
        for w in range(n):
            total = sum(r.nbytes for r in result.topology.links[w].records)
            if w == 1:
                assert total == 0.0  # the dead rank never transmitted
            else:
                assert total == pytest.approx(per_link)

        counts = _survivor_iteration_counts(result, config, crashed=1)
        assert set(counts.values()) == {config.n_iterations}
        assert result.fault_stats["shrinks"] == 1
        assert result.fault_stats["crashes"] == 1

    def test_mid_training_crash_completes_and_reports_recovery(
        self, ring_config_module, clean_ring
    ):
        t_crash = 0.4 * clean_ring.end_time
        config = replace(
            ring_config_module,
            faults=FaultPlan(
                crashes=[
                    WorkerCrash(
                        worker=2,
                        at=t_crash,
                        restart_after=0.1 * clean_ring.end_time,
                    )
                ]
            ),
        )
        result = run_training(config, prophet_factory())

        counts = _survivor_iteration_counts(result, config, crashed=2)
        assert set(counts.values()) == {config.n_iterations}
        assert len(result.recorder.worker_iterations(2)) < config.n_iterations
        assert result.fault_stats["shrinks"] == 1

        kinds = [kind for _, kind, _ in result.fault_log]
        assert "collective.shrink" in kinds
        # The rejoin door is one-way: the restart is refused, not applied.
        assert "collective.rejoin_refused" in kinds
        assert result.fault_stats["restarts"] == 1

        # Recovery is measurable: the survivors' ring turns again after
        # the crash (fresh iteration starts strictly later than t_crash).
        crash_times = [t for t, kind, _ in result.fault_log if kind == "fault.crash"]
        assert len(crash_times) == 1
        later_starts = [
            r.fwd_start
            for w in (0, 1, 3)
            for r in result.recorder.worker_iterations(w)
            if r.fwd_start > crash_times[0]
        ]
        assert later_starts, "survivors never resumed after the crash"

    def test_crash_after_completion_is_moot(self, ring_config_module, clean_ring):
        config = replace(
            ring_config_module,
            faults=FaultPlan(
                crashes=[
                    WorkerCrash(
                        worker=0, at=10 * clean_ring.end_time, restart_after=0.1
                    )
                ]
            ),
        )
        result = run_training(config, fifo_factory())
        assert result.fault_stats["crashes"] == 0
        assert result.fault_stats["shrinks"] == 0


class TestChunkLoss:
    def test_dropped_chunks_retransmit_and_training_completes(
        self, ring_config_module, clean_ring
    ):
        config = replace(
            ring_config_module,
            faults=FaultPlan(drops=[MessageDrops(push=0.05)]),
        )
        result = run_training(config, fifo_factory())
        stats = result.fault_stats
        assert stats["chunk_drops"] > 0
        assert stats["chunk_retries"] >= stats["chunk_drops"]
        assert stats["ring_steps"] > 0
        for w in range(config.n_workers):
            assert (
                len(result.recorder.worker_iterations(w)) == config.n_iterations
            )
        # Retransmissions add bytes on top of the exact clean total and
        # cost wall-clock time.
        n = config.n_workers
        clean_per_link = (
            2.0 * (n - 1) / n
            * float(result.gen_schedule.sizes.sum())
            * config.n_iterations
        )
        totals = [
            sum(r.nbytes for r in link.records) for link in result.topology.links
        ]
        assert sum(totals) > clean_per_link * n
        assert result.end_time > clean_ring.end_time


class TestStragglerWatchdog:
    def test_repeated_chunk_loss_trips_step_timeouts(
        self, ring_config_module, clean_ring
    ):
        """The watchdog budget is 3x the launch-time estimate plus one
        retry timeout.  Link transfers commit to the bandwidth sampled at
        send time, so a flap alone cannot stretch an in-flight chunk past
        its own estimate — but a chunk lost *twice* accumulates the
        escalating retry backoff and blows the budget, which is exactly
        the stall the watchdog exists to flag."""
        config = replace(
            ring_config_module,
            faults=FaultPlan(drops=[MessageDrops(push=0.15)]),
        )
        result = run_training(config, fifo_factory())
        stats = result.fault_stats
        assert stats["stalled_steps"] > 0
        assert stats["stalled_steps"] < stats["ring_steps"]
        stragglers = [
            detail
            for _, kind, detail in result.fault_log
            if kind == "collective.straggler"
        ]
        assert stragglers
        for w in range(config.n_workers):
            assert (
                len(result.recorder.worker_iterations(w)) == config.n_iterations
            )
        assert result.end_time > clean_ring.end_time

    def test_flap_slows_the_ring_without_false_stalls(
        self, ring_config_module, clean_ring
    ):
        """A clean (lossless) flap re-prices every chunk at launch, so the
        ring slows down but the watchdog — whose budget is set from the
        same launch-time estimate — must not cry wolf."""
        config = replace(
            ring_config_module,
            faults=FaultPlan(
                flaps=[
                    LinkFlap(
                        start=0.3 * clean_ring.end_time,
                        duration=0.3 * clean_ring.end_time,
                        factor=0.05,
                        worker=0,
                    )
                ]
            ),
        )
        result = run_training(config, fifo_factory())
        assert result.fault_stats["link_flaps"] == 1
        assert result.fault_stats["stalled_steps"] == 0
        assert result.end_time > clean_ring.end_time


class TestHierarchicalDegrade:
    def test_crash_degrades_to_flat_ring_over_survivors(self, ring_config_module):
        config = replace(
            ring_config_module,
            n_workers=6,
            collective="hierarchical",
            collective_group_size=3,
            faults=FaultPlan(
                crashes=[WorkerCrash(worker=1, at=1e-9, restart_after=0.05)]
            ),
        )
        trainer = Trainer(config, fifo_factory())
        result = trainer.run()
        assert trainer.executor.degraded_flat
        assert result.fault_stats["shrinks"] == 1
        counts = _survivor_iteration_counts(result, config, crashed=1)
        assert set(counts.values()) == {config.n_iterations}
        # The flat ring runs over the survivors' *local* links only; the
        # two-level plan is gone, so each surviving local link carries the
        # flat-ring share 2(k-1)/k with k = 5 survivors.
        survivors = config.n_workers - 1
        factor = 2.0 * (survivors - 1) / survivors
        per_link = (
            factor * float(result.gen_schedule.sizes.sum()) * config.n_iterations
        )
        for w in range(config.n_workers):
            total = sum(
                r.nbytes for r in result.topology.local_links[w].records
            )
            if w == 1:
                assert total == 0.0
            else:
                assert total == pytest.approx(per_link)
