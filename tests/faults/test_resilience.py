"""End-to-end resilience tests: training survives the fault plan, the
conservation laws hold under retries, and the injection layer is provably
inert when unused."""

from dataclasses import replace

import pytest

from repro.cluster.trainer import Trainer, run_training
from repro.faults.plan import (
    FaultPlan,
    LinkFlap,
    MessageDrops,
    PSStall,
    WorkerCrash,
)
from repro.workloads.presets import (
    fifo_factory,
    p3_factory,
    prophet_factory,
)


@pytest.fixture(scope="module")
def clean_end_time(tiny_config_module):
    return run_training(tiny_config_module, fifo_factory()).end_time


@pytest.fixture(scope="module")
def tiny_config_module():
    # Module-scoped twin of the function-scoped ``tiny_config`` fixture so
    # the clean reference run is simulated once for the whole module.
    from repro.agg.policies import ExplicitGroupsPolicy
    from repro.config import TrainingConfig
    from repro.models.device import DeviceSpec
    from repro.net.tcp import TCPParams
    from repro.quantities import Gbps
    from tests.conftest import TINY_MODEL_NAME

    return TrainingConfig(
        model=TINY_MODEL_NAME,
        batch_size=8,
        n_workers=2,
        n_iterations=6,
        bandwidth=1 * Gbps,
        tcp=TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=0.8),
        device=DeviceSpec(name="test-gpu", peak_flops=4e12, efficiency=0.25),
        agg_policy=ExplicitGroupsPolicy(((5, 6, 7), (3, 4), (2,), (0, 1))),
        seed=7,
        jitter_std=0.01,
    )


def run_with(config, plan, factory=None):
    trainer = Trainer(replace(config, faults=plan), factory or fifo_factory())
    result = trainer.run()
    return trainer, result


def assert_conservation(trainer, config):
    """Every gradient byte was credited exactly once per worker-iteration,
    no matter how many times its carrier message was (re)transmitted."""
    expected = (
        float(trainer.ps.sizes.sum()) * config.n_workers * config.n_iterations
    )
    assert trainer.ps.total_push_bytes == pytest.approx(expected, rel=1e-9)


class TestInertness:
    @pytest.mark.parametrize("factory_fn", [fifo_factory, prophet_factory])
    def test_empty_plan_is_bit_identical_to_no_plan(
        self, tiny_config_module, factory_fn
    ):
        base = run_training(tiny_config_module, factory_fn())
        empty = run_training(
            replace(tiny_config_module, faults=FaultPlan()), factory_fn()
        )
        assert empty.end_time == base.end_time  # exact, not approx
        assert empty.training_rate() == base.training_rate()
        assert base.fault_stats is None and empty.fault_stats is None

    def test_noop_drop_plan_wires_no_injector(self, tiny_config_module):
        trainer, result = run_with(
            tiny_config_module, FaultPlan(drops=[MessageDrops()])
        )
        assert trainer.injector is None
        assert result.fault_stats is None


class TestMessageLoss:
    @pytest.fixture(scope="class")
    def lossy(self, tiny_config_module):
        plan = FaultPlan(drops=[MessageDrops(push=0.05, pull=0.05, ack=0.05)])
        return run_with(tiny_config_module, plan), tiny_config_module

    def test_completes_and_conserves_bytes(self, lossy):
        (trainer, result), config = lossy
        assert result.end_time > 0
        assert_conservation(trainer, config)

    def test_retries_and_drops_counted(self, lossy):
        (trainer, result), _ = lossy
        stats = result.fault_stats
        assert stats["push_drops"] > 0
        assert stats["push_retries"] >= stats["push_drops"]
        assert stats["pull_retries"] == stats["pull_drops"]

    def test_every_ack_drop_produces_exactly_one_duplicate(self, lossy):
        """At-most-once application: a lost ack forces a retransmission of
        an already-applied message, which the PS must dedup by seq."""
        (trainer, result), _ = lossy
        stats = result.fault_stats
        assert stats["ack_drops"] > 0
        assert stats["duplicate_pushes"] == stats["ack_drops"]

    def test_losses_slow_training_down(self, lossy, clean_end_time):
        (_, result), _ = lossy
        assert result.end_time > clean_end_time


class TestCrashRestart:
    @pytest.fixture(scope="class")
    def crashed(self, tiny_config_module, clean_end_time):
        plan = FaultPlan(
            crashes=[
                WorkerCrash(
                    worker=1,
                    at=0.3 * clean_end_time,
                    restart_after=0.15 * clean_end_time,
                )
            ]
        )
        return run_with(tiny_config_module, plan), tiny_config_module

    def test_completes_and_conserves_bytes(self, crashed):
        (trainer, result), config = crashed
        assert_conservation(trainer, config)

    def test_crash_and_restart_logged(self, crashed, clean_end_time):
        (_, result), _ = crashed
        assert result.fault_stats["crashes"] == 1
        assert result.fault_stats["restarts"] == 1
        kinds = [kind for _, kind, _ in result.fault_log]
        assert kinds.index("fault.crash") < kinds.index("fault.restart")
        assert result.end_time > clean_end_time  # the outage costs time

    def test_p3_survives_crash_with_reordering(self, tiny_config_module):
        """P3's partition slicing exercises the PS reorder buffer: a
        retransmitted partition may be overtaken by its successor."""
        plan = FaultPlan(
            crashes=[WorkerCrash(worker=0, at=0.05, restart_after=0.05)],
            drops=[MessageDrops(push=0.08)],
        )
        trainer, result = run_with(tiny_config_module, plan, p3_factory())
        assert result.end_time > 0
        assert_conservation(trainer, tiny_config_module)

    def test_crash_after_completion_is_moot(self, tiny_config_module, clean_end_time):
        plan = FaultPlan(
            crashes=[
                WorkerCrash(
                    worker=0, at=10 * clean_end_time, restart_after=0.1
                )
            ]
        )
        _, result = run_with(tiny_config_module, plan)
        assert result.fault_stats["crashes"] == 0


class TestFlapAndStall:
    def test_flap_slows_training_and_is_counted(
        self, tiny_config_module, clean_end_time
    ):
        plan = FaultPlan(
            flaps=[
                LinkFlap(
                    start=0.2 * clean_end_time,
                    duration=0.3 * clean_end_time,
                    factor=0.2,
                )
            ]
        )
        trainer, result = run_with(tiny_config_module, plan)
        assert result.fault_stats["link_flaps"] == 1
        assert result.end_time > clean_end_time
        assert_conservation(trainer, tiny_config_module)

    def test_ps_stall_defers_but_loses_nothing(
        self, tiny_config_module, clean_end_time
    ):
        stall = 0.2 * clean_end_time
        plan = FaultPlan(
            ps_stalls=[PSStall(at=0.4 * clean_end_time, duration=stall)]
        )
        trainer, result = run_with(tiny_config_module, plan)
        assert result.fault_stats["ps_stalls"] == 1
        assert result.end_time > clean_end_time
        assert_conservation(trainer, tiny_config_module)


class TestShardedTier:
    """The same fault plan semantics, lifted onto the key-sharded tier:
    per-shard stalls pin to one PS, a server crash loses in-flight pushes
    until the warm standby answers, and byte conservation holds across
    the whole tier."""

    @pytest.fixture(scope="class")
    def sharded_faulty(self, tiny_config_module):
        from repro.faults.plan import ServerCrash

        plan = FaultPlan(
            ps_stalls=[PSStall(at=0.4, duration=0.2, server=0)],
            server_crashes=[
                ServerCrash(server=1, at=0.9, failover_after=0.4)
            ],
            drops=[MessageDrops(push=0.03)],
        )
        config = replace(tiny_config_module, n_servers=2, faults=plan)
        trainer = Trainer(config, fifo_factory())
        result = trainer.run()
        return trainer, result, config

    def test_completes_with_all_iterations(self, sharded_faulty):
        _, result, config = sharded_faulty
        for w in range(config.n_workers):
            assert (
                len(result.recorder.worker_iterations(w))
                == config.n_iterations
            )

    def test_tier_conserves_bytes_across_shards(self, sharded_faulty):
        """Every gradient byte is credited exactly once per
        worker-iteration across the whole tier, despite drops, the
        outage's lost pushes and the resulting retransmissions."""
        trainer, _, config = sharded_faulty
        total = sum(s.total_push_bytes for s in trainer.servers)
        expected = (
            sum(float(s.sizes.sum()) for s in trainer.servers)
            * config.n_workers
            * config.n_iterations
        )
        assert total == pytest.approx(expected, rel=1e-9)

    def test_per_shard_events_counted_and_logged(self, sharded_faulty):
        _, result, _ = sharded_faulty
        stats = result.fault_stats
        assert stats["ps_stalls"] == 1
        assert stats["server_crashes"] == 1
        assert stats["failovers"] == 1
        kinds = [kind for _, kind, _ in result.fault_log]
        assert kinds.index("fault.server_crash") < kinds.index("fault.failover")

    def test_outage_loses_pushes_that_reliable_delivery_replays(
        self, sharded_faulty
    ):
        _, result, _ = sharded_faulty
        stats = result.fault_stats
        assert stats["lost_pushes"] > 0
        assert stats["push_retries"] >= stats["lost_pushes"]

    def test_stall_pinned_to_one_shard_leaves_the_other_untouched(
        self, tiny_config_module
    ):
        """A stall on shard 0 defers only shard 0's releases: shard 1's
        run is bit-identical to the no-fault build."""
        config = replace(tiny_config_module, n_servers=2)
        clean = run_training(config, fifo_factory())
        stalled = run_training(
            replace(
                config,
                faults=FaultPlan(
                    ps_stalls=[PSStall(at=0.5, duration=0.5, server=0)]
                ),
            ),
            fifo_factory(),
        )
        assert stalled.fault_stats["ps_stalls"] == 1
        assert stalled.end_time > clean.end_time
