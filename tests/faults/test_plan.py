"""Validation tests for the declarative fault plans."""

import math

import pytest

from repro.cluster.messages import RetryPolicy
from repro.errors import ConfigurationError
from repro.faults.plan import (
    FaultPlan,
    LinkFlap,
    MessageDrops,
    PSStall,
    ServerCrash,
    WorkerCrash,
)


class TestWorkerCrash:
    def test_valid(self):
        crash = WorkerCrash(worker=1, at=2.0, restart_after=0.5)
        assert crash.worker == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(worker=-1, at=1.0, restart_after=0.5),
            dict(worker=0, at=-0.1, restart_after=0.5),
            dict(worker=0, at=1.0, restart_after=0.0),
            dict(worker=0, at=1.0, restart_after=-1.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            WorkerCrash(**kwargs)


class TestLinkFlap:
    def test_end_property(self):
        flap = LinkFlap(start=4.0, duration=1.5, factor=0.3)
        assert flap.end == pytest.approx(5.5)
        assert flap.worker is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(start=-1.0, duration=1.0, factor=0.5),
            dict(start=0.0, duration=0.0, factor=0.5),
            dict(start=0.0, duration=1.0, factor=0.0),  # full cut not allowed
            dict(start=0.0, duration=1.0, factor=1.5),
            dict(start=0.0, duration=1.0, factor=0.5, worker=-2),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            LinkFlap(**kwargs)


class TestMessageDrops:
    def test_defaults_are_noop_over_all_time(self):
        drops = MessageDrops()
        assert drops.is_noop
        assert drops.end == math.inf

    def test_any_positive_probability_is_not_noop(self):
        assert not MessageDrops(ack=0.01).is_noop

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(push=1.0),  # certainty would retry forever
            dict(pull=-0.1),
            dict(ack=2.0),
            dict(start=-1.0),
            dict(start=2.0, end=2.0),
            dict(worker=-1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            MessageDrops(**kwargs)


class TestPSStall:
    def test_end_property(self):
        stall = PSStall(at=6.0, duration=0.3)
        assert stall.end == pytest.approx(6.3)

    @pytest.mark.parametrize(
        "kwargs", [dict(at=-1.0, duration=0.3), dict(at=0.0, duration=0.0)]
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            PSStall(**kwargs)


class TestRetryPolicy:
    def test_timeouts_back_off_exponentially_and_cap(self):
        policy = RetryPolicy(timeout=0.01, backoff=2.0, max_timeout=0.05)
        assert policy.timeout_for(0) == pytest.approx(0.01)
        assert policy.timeout_for(1) == pytest.approx(0.02)
        assert policy.timeout_for(2) == pytest.approx(0.04)
        assert policy.timeout_for(3) == pytest.approx(0.05)  # capped
        assert policy.timeout_for(10) == pytest.approx(0.05)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(timeout=0.0),
            dict(backoff=0.5),
            dict(max_timeout=0.001, timeout=0.01),
            dict(max_retries=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)


class TestFaultPlan:
    def test_lists_normalize_to_tuples(self):
        plan = FaultPlan(crashes=[WorkerCrash(worker=0, at=1.0, restart_after=0.5)])
        assert isinstance(plan.crashes, tuple)

    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty

    def test_noop_drops_keep_plan_empty(self):
        assert FaultPlan(drops=[MessageDrops()]).is_empty

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(crashes=[WorkerCrash(worker=0, at=1.0, restart_after=0.5)]),
            dict(flaps=[LinkFlap(start=0.0, duration=1.0, factor=0.5)]),
            dict(drops=[MessageDrops(push=0.1)]),
            dict(ps_stalls=[PSStall(at=1.0, duration=0.2)]),
        ],
    )
    def test_any_fault_makes_plan_nonempty(self, kwargs):
        assert not FaultPlan(**kwargs).is_empty

    def test_duplicate_crash_worker_rejected(self):
        with pytest.raises(ConfigurationError, match="multiple crashes"):
            FaultPlan(
                crashes=[
                    WorkerCrash(worker=0, at=1.0, restart_after=0.5),
                    WorkerCrash(worker=0, at=3.0, restart_after=0.5),
                ]
            )

    def test_overlapping_ps_stalls_rejected(self):
        with pytest.raises(ConfigurationError, match="overlap"):
            FaultPlan(
                ps_stalls=[
                    PSStall(at=1.0, duration=1.0),
                    PSStall(at=1.5, duration=1.0),
                ]
            )

    def test_validate_workers_checks_every_reference(self):
        plan = FaultPlan(crashes=[WorkerCrash(worker=3, at=1.0, restart_after=0.5)])
        plan.validate_workers(4)  # in range: fine
        with pytest.raises(ConfigurationError, match="worker 3"):
            plan.validate_workers(3)
        with pytest.raises(ConfigurationError):
            FaultPlan(
                flaps=[LinkFlap(start=0.0, duration=1.0, factor=0.5, worker=5)]
            ).validate_workers(2)
        with pytest.raises(ConfigurationError):
            FaultPlan(drops=[MessageDrops(push=0.1, worker=9)]).validate_workers(2)


class TestValidateTopology:
    def test_ps_star_accepts_the_full_cocktail(self):
        plan = FaultPlan(
            crashes=[WorkerCrash(worker=0, at=1.0, restart_after=0.1)],
            drops=[MessageDrops(push=0.1, pull=0.1, ack=0.1)],
            ps_stalls=[PSStall(at=2.0, duration=0.5)],
        )
        plan.validate_topology(n_workers=2)  # no raise

    def test_sharded_tier_checks_server_references(self):
        plan = FaultPlan(
            server_crashes=[ServerCrash(server=1, at=1.0, failover_after=0.2)],
            ps_stalls=[PSStall(at=2.0, duration=0.5, server=1)],
        )
        plan.validate_topology(n_workers=2, n_servers=2)  # no raise
        with pytest.raises(ConfigurationError, match="server 1"):
            plan.validate_topology(n_workers=2, n_servers=1)
        stall_only = FaultPlan(ps_stalls=[PSStall(at=2.0, duration=0.5, server=3)])
        with pytest.raises(ConfigurationError, match="server 3"):
            stall_only.validate_topology(n_workers=2, n_servers=2)

    def test_allreduce_rejects_ps_leg_faults(self):
        for plan, fragment in (
            (FaultPlan(drops=[MessageDrops(pull=0.1)]), "pull/ack"),
            (FaultPlan(drops=[MessageDrops(ack=0.1)]), "pull/ack"),
            (FaultPlan(ps_stalls=[PSStall(at=1.0, duration=0.5)]), "stall"),
            (
                FaultPlan(
                    server_crashes=[
                        ServerCrash(server=0, at=1.0, failover_after=0.2)
                    ]
                ),
                "server crash",
            ),
        ):
            with pytest.raises(ConfigurationError, match=fragment):
                plan.validate_topology(n_workers=4, backend="allreduce")

    def test_allreduce_accepts_push_drops_and_crashes(self):
        plan = FaultPlan(
            crashes=[WorkerCrash(worker=1, at=1.0, restart_after=0.1)],
            drops=[MessageDrops(push=0.1)],
            flaps=[LinkFlap(start=2.0, duration=0.5, factor=0.3)],
        )
        plan.validate_topology(n_workers=4, backend="allreduce")  # no raise

    def test_allreduce_requires_a_survivor(self):
        plan = FaultPlan(
            crashes=[
                WorkerCrash(worker=0, at=1.0, restart_after=0.1),
                WorkerCrash(worker=1, at=2.0, restart_after=0.1),
            ]
        )
        with pytest.raises(ConfigurationError, match="survivor"):
            plan.validate_topology(n_workers=2, backend="allreduce")
        plan.validate_topology(n_workers=3, backend="allreduce")  # no raise

    def test_worker_references_checked_on_every_backend(self):
        plan = FaultPlan(
            crashes=[WorkerCrash(worker=5, at=1.0, restart_after=0.1)]
        )
        for backend in ("ps", "allreduce"):
            with pytest.raises(ConfigurationError, match="worker 5"):
                plan.validate_topology(n_workers=2, backend=backend)
