"""Unit tests for the fault injector and the flapped bandwidth schedule."""

import pytest

from repro.errors import SimulationError
from repro.faults.injector import FaultInjector, FlappedSchedule
from repro.faults.plan import FaultPlan, LinkFlap, MessageDrops, PSStall
from repro.net.link import BandwidthSchedule
from repro.quantities import Gbps
from repro.sim.engine import Engine
from repro.sim.rng import spawn_rng


def make_injector(plan, n_workers=2, seed=0):
    return FaultInjector(Engine(), plan, n_workers, spawn_rng(seed, "faults"))


class TestFlappedSchedule:
    def test_flap_applies_only_inside_window(self):
        base = BandwidthSchedule.constant(2 * Gbps)
        flapped = FlappedSchedule(
            base, (LinkFlap(start=1.0, duration=2.0, factor=0.5),)
        )
        assert flapped.value(0.5) == pytest.approx(2 * Gbps)
        assert flapped.value(1.5) == pytest.approx(1 * Gbps)
        assert flapped.value(3.0) == pytest.approx(2 * Gbps)  # end exclusive

    def test_overlapping_flaps_compound(self):
        base = BandwidthSchedule.constant(1 * Gbps)
        flapped = FlappedSchedule(
            base,
            (
                LinkFlap(start=0.0, duration=4.0, factor=0.5),
                LinkFlap(start=1.0, duration=1.0, factor=0.5),
            ),
        )
        assert flapped.value(1.5) == pytest.approx(0.25 * Gbps)

    def test_mean_ignores_transient_flaps(self):
        base = BandwidthSchedule.constant(3 * Gbps)
        flapped = FlappedSchedule(
            base, (LinkFlap(start=0.0, duration=1.0, factor=0.1),)
        )
        assert flapped.mean == pytest.approx(base.mean)


class TestRollDrop:
    def test_zero_probability_never_drops(self):
        inj = make_injector(FaultPlan(drops=[MessageDrops(push=0.0)]))
        assert not any(inj.roll_drop("push", 0) for _ in range(100))
        assert inj.stats["push_drops"] == 0

    def test_drop_rate_tracks_probability(self):
        inj = make_injector(FaultPlan(drops=[MessageDrops(push=0.3)]))
        n = 2000
        dropped = sum(inj.roll_drop("push", 0) for _ in range(n))
        assert 0.2 < dropped / n < 0.4
        assert inj.stats["push_drops"] == dropped

    def test_window_gates_drops(self):
        engine = Engine()
        plan = FaultPlan(drops=[MessageDrops(push=0.9, start=5.0, end=6.0)])
        inj = FaultInjector(engine, plan, 1, spawn_rng(0, "faults"))
        assert not any(inj.roll_drop("push", 0) for _ in range(50))  # t=0 < start

    def test_worker_scoped_drops_spare_other_workers(self):
        inj = make_injector(FaultPlan(drops=[MessageDrops(push=0.9, worker=1)]))
        assert not any(inj.roll_drop("push", 0) for _ in range(50))
        assert any(inj.roll_drop("push", 1) for _ in range(50))

    def test_independent_specs_combine(self):
        inj = make_injector(
            FaultPlan(drops=[MessageDrops(push=0.5), MessageDrops(push=0.5)])
        )
        n = 2000
        dropped = sum(inj.roll_drop("push", 0) for _ in range(n))
        assert 0.65 < dropped / n < 0.85  # 1 - 0.5 * 0.5 = 0.75

    def test_unknown_leg_raises(self):
        inj = make_injector(FaultPlan())
        with pytest.raises(SimulationError):
            inj.roll_drop("gossip", 0)

    def test_same_seed_same_drop_sequence(self):
        plan = FaultPlan(drops=[MessageDrops(push=0.5)])

        def rolls(seed):
            inj = make_injector(plan, seed=seed)
            return [inj.roll_drop("push", 0) for _ in range(20)]

        assert rolls(3) == rolls(3)
        assert rolls(3) != rolls(4)


class TestPSReleaseDelay:
    def test_delay_defers_to_window_end(self):
        inj = make_injector(FaultPlan(ps_stalls=[PSStall(at=2.0, duration=1.0)]))
        assert inj.ps_release_delay(1.0) == 0.0
        assert inj.ps_release_delay(2.2) == pytest.approx(0.8)
        assert inj.ps_release_delay(3.0) == 0.0  # end exclusive


class TestInstall:
    def test_install_twice_raises(self):
        inj = make_injector(FaultPlan())
        inj.install([], {})
        with pytest.raises(SimulationError, match="twice"):
            inj.install([], {})

    def test_out_of_range_plan_rejected_at_construction(self):
        from repro.errors import ConfigurationError
        from repro.faults.plan import WorkerCrash

        plan = FaultPlan(crashes=[WorkerCrash(worker=5, at=1.0, restart_after=0.5)])
        with pytest.raises(ConfigurationError):
            make_injector(plan, n_workers=2)


def test_count_accumulates():
    inj = make_injector(FaultPlan())
    inj.count("push_retries")
    inj.count("push_retries", 3)
    assert inj.stats["push_retries"] == 4
