"""Graceful-degradation tests for the Prophet scheduler: stale-profile
drift detection, bandwidth-collapse detection, and the fallback actions."""

from dataclasses import replace

import numpy as np
import pytest

from repro.agg.kvstore import KVStore
from repro.cluster.trainer import run_training
from repro.core.profiler import JobProfile
from repro.errors import ConfigurationError
from repro.models.compute import build_compute_profile
from repro.net.link import BandwidthSchedule
from repro.net.tcp import TCPParams
from repro.quantities import Gbps
from repro.sched.prophet_sched import ProphetScheduler
from repro.workloads.presets import prophet_factory

TCP = TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=1.0)


@pytest.fixture
def schedule(tiny_model, tiny_device):
    prof = build_compute_profile(tiny_model, tiny_device, batch_size=8)
    return KVStore().generation_schedule(prof)


@pytest.fixture
def profile(schedule):
    return JobProfile.from_generation_schedule(schedule)


def make_prophet(profile, bandwidth_fn, **kwargs):
    defaults = dict(tcp=TCP, collapse_factor=0.0)
    defaults.update(kwargs)
    return ProphetScheduler(
        bandwidth_provider=bandwidth_fn, profile=profile, **defaults
    )


def feed_iteration(s, schedule, iteration, now0, dilation=1.0):
    """Run one begin/ready*/drain/end cycle, generation times scaled by
    ``dilation`` (a dilation far from 1.0 models a profile gone stale)."""
    s.begin_iteration(iteration, schedule, now0)
    for g in np.argsort(schedule.c):
        s.gradient_ready(int(g), now0 + dilation * float(schedule.c[g]))
    end = now0 + dilation * float(schedule.c.max())
    while True:  # every gradient is signalled, so the forward path drains
        unit = s.propose_unit(end)
        if unit is None:
            break
        s.commit_unit(unit, end)
    s.end_iteration(iteration, end - now0, end)
    return end


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(stale_tolerance=0.0),
            dict(stale_tolerance=-1.0),
            dict(stale_patience=0),
            dict(collapse_factor=1.0),
            dict(collapse_factor=-0.1),
            dict(on_stale="panic"),
        ],
    )
    def test_bad_degradation_knobs_rejected(self, profile, kwargs):
        with pytest.raises(ConfigurationError):
            make_prophet(profile, lambda: 1e9, **kwargs)

    def test_none_tolerance_disables_drift_detection(self, schedule, profile):
        s = make_prophet(profile, lambda: 1e9, stale_tolerance=None)
        now = 0.0
        for it in range(4):
            now = feed_iteration(s, schedule, it, now, dilation=10.0)
        assert not s.degraded


class TestStaleProfile:
    def test_drift_beyond_tolerance_needs_patience(self, schedule, profile):
        s = make_prophet(
            profile, lambda: 1e9, stale_tolerance=0.5, stale_patience=2
        )
        now = feed_iteration(s, schedule, 0, 0.0, dilation=5.0)
        assert not s.degraded  # one bad iteration: streak, not detection
        feed_iteration(s, schedule, 1, now, dilation=5.0)
        assert s.degraded
        assert s.stale_detections == 1
        assert s.fallbacks == 1
        assert s.profile is None

    def test_accurate_iterations_reset_the_streak(self, schedule, profile):
        s = make_prophet(
            profile, lambda: 1e9, stale_tolerance=0.5, stale_patience=2
        )
        now = feed_iteration(s, schedule, 0, 0.0, dilation=5.0)
        now = feed_iteration(s, schedule, 1, now, dilation=1.0)  # on-plan
        feed_iteration(s, schedule, 2, now, dilation=5.0)
        assert not s.degraded

    def test_reprofile_action_reenters_warmup(self, schedule, profile):
        events = []
        s = make_prophet(
            profile,
            lambda: 1e9,
            stale_tolerance=0.3,
            stale_patience=1,
            on_stale="reprofile",
            profile_iterations=2,
            notify=lambda e, d: events.append((e, d)),
        )
        now = feed_iteration(s, schedule, 0, 0.0, dilation=6.0)
        assert s.reprofiles == 1 and s.profile is None
        assert len(events) == 1
        name, detail = events[0]
        assert name == "prophet.fallback"
        assert detail["reason"] == "stale-profile"
        assert detail["action"] == "reprofile"
        # Warmup-FIFO path re-profiles from the new (dilated) timings and
        # converges back to a plan after ``profile_iterations`` iterations.
        now = feed_iteration(s, schedule, 1, now, dilation=6.0)
        feed_iteration(s, schedule, 2, now, dilation=6.0)
        assert s.active  # fresh profile built from post-shift reality
        assert not s._fifo_locked

    def test_fifo_action_locks_permanently(self, schedule, profile):
        s = make_prophet(
            profile,
            lambda: 1e9,
            stale_tolerance=0.3,
            stale_patience=1,
            on_stale="fifo",
            profile_iterations=1,
        )
        now = feed_iteration(s, schedule, 0, 0.0, dilation=6.0)
        assert s.degraded
        for it in range(1, 5):
            now = feed_iteration(s, schedule, it, now, dilation=6.0)
        assert s.profile is None  # never re-profiles


class TestBandwidthCollapse:
    def test_collapse_against_running_max_reference(self, schedule, profile):
        bw = {"v": 1e9}
        events = []
        s = make_prophet(
            profile,
            lambda: bw["v"],
            collapse_factor=0.1,
            stale_tolerance=None,
            notify=lambda e, d: events.append((e, d)),
        )
        s.begin_iteration(0, schedule, 0.0)  # reference := 1e9
        assert not s.degraded
        bw["v"] = 5e7  # 5% of the best seen
        s.begin_iteration(1, schedule, 1.0)
        assert s.degraded and s.collapse_detections == 1
        assert events[0][1]["reason"] == "bandwidth-collapse"
        assert events[0][1]["bandwidth"] == pytest.approx(5e7)

    def test_moderate_dip_is_not_a_collapse(self, schedule, profile):
        bw = {"v": 1e9}
        s = make_prophet(
            profile, lambda: bw["v"], collapse_factor=0.1, stale_tolerance=None
        )
        s.begin_iteration(0, schedule, 0.0)
        bw["v"] = 4e8  # 40%: degraded link, not a collapse
        s.begin_iteration(1, schedule, 1.0)
        assert not s.degraded


class TestEndToEndFallback:
    def test_forced_collapse_fires_fallback_with_trace_instant(
        self, tiny_config
    ):
        """Acceptance: under a forced mid-run bandwidth collapse the
        planner falls back, and the detection lands in the trace."""
        clean = run_training(tiny_config, prophet_factory())
        t_half = 0.5 * clean.end_time
        collapsing = BandwidthSchedule(
            [(0.0, 1 * Gbps), (t_half, 0.01 * Gbps)]
        )
        config = replace(
            tiny_config,
            bandwidth=collapsing,
            monitor_interval=0.1 * t_half,
            trace=True,
        )
        result = run_training(
            config, prophet_factory(collapse_factor=0.25, on_stale="fifo")
        )
        assert any(s.degraded for s in result.schedulers)
        fallbacks = [
            e for e in result.trace.events if e.name == "prophet.fallback"
        ]
        assert fallbacks, "fallback must be visible as a trace instant"
        assert all(e.cat == "fault" for e in fallbacks)
        assert fallbacks[0].args["reason"] == "bandwidth-collapse"
        assert fallbacks[0].ts >= t_half
