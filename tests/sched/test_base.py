"""Unit tests for the scheduler base class contract."""

import pytest

from repro.agg.kvstore import KVStore
from repro.errors import SchedulingError
from repro.models.compute import build_compute_profile
from repro.sched.base import CommScheduler, Segment, TransferUnit


class WholeTensorScheduler(CommScheduler):
    """Minimal concrete scheduler: highest-priority whole tensor."""

    name = "test-whole"

    def _select(self, now):
        ready = self.ready_grads
        if not ready:
            return None
        grad = ready[0]
        return TransferUnit(
            segments=(Segment(grad=grad, offset=0.0, nbytes=self.size_of(grad)),)
        )


@pytest.fixture
def schedule(tiny_model, tiny_device):
    prof = build_compute_profile(tiny_model, tiny_device, batch_size=8)
    return KVStore().generation_schedule(prof)


@pytest.fixture
def sched(schedule):
    s = WholeTensorScheduler()
    s.begin_iteration(0, schedule, 0.0)
    return s


class TestSegmentAndUnit:
    def test_segment_validation(self):
        with pytest.raises(SchedulingError):
            Segment(grad=0, offset=0.0, nbytes=0.0)
        with pytest.raises(SchedulingError):
            Segment(grad=0, offset=-1.0, nbytes=10.0)

    def test_empty_unit_rejected(self):
        with pytest.raises(SchedulingError):
            TransferUnit(segments=())

    def test_unit_aggregates(self):
        unit = TransferUnit(
            segments=(
                Segment(grad=3, offset=0.0, nbytes=100.0),
                Segment(grad=1, offset=0.0, nbytes=50.0),
            )
        )
        assert unit.total_bytes == 150.0
        assert unit.priority == 1
        assert unit.grads == (3, 1)


class TestReadyBookkeeping:
    def test_propose_before_ready_returns_none(self, sched):
        assert sched.propose_unit(0.0) is None

    def test_ready_then_propose(self, sched):
        sched.gradient_ready(5, 0.1)
        unit = sched.propose_unit(0.1)
        assert unit is not None
        assert unit.segments[0].grad == 5

    def test_propose_does_not_consume(self, sched):
        sched.gradient_ready(5, 0.1)
        sched.propose_unit(0.1)
        assert sched.remaining_bytes(5) == sched.size_of(5)

    def test_commit_debits_bytes(self, sched):
        sched.gradient_ready(5, 0.1)
        unit = sched.propose_unit(0.1)
        sched.commit_unit(unit, 0.1)
        assert sched.remaining_bytes(5) == 0.0
        assert sched.propose_unit(0.2) is None

    def test_double_ready_raises(self, sched):
        sched.gradient_ready(5, 0.1)
        with pytest.raises(SchedulingError):
            sched.gradient_ready(5, 0.2)

    def test_ready_before_begin_raises(self, schedule):
        s = WholeTensorScheduler()
        with pytest.raises(SchedulingError):
            s.gradient_ready(0, 0.0)

    def test_priority_ordering_of_ready_grads(self, sched):
        for g in (7, 3, 5):
            sched.gradient_ready(g, 0.1)
        assert sched.ready_grads == [3, 5, 7]

    def test_pending_bytes_sums_remaining(self, sched, schedule):
        sched.gradient_ready(2, 0.1)
        sched.gradient_ready(3, 0.1)
        assert sched.pending_bytes == pytest.approx(
            schedule.sizes[2] + schedule.sizes[3]
        )


class TestCommitValidation:
    def test_commit_unready_gradient_raises(self, sched):
        unit = TransferUnit(segments=(Segment(grad=1, offset=0.0, nbytes=10.0),))
        with pytest.raises(SchedulingError):
            sched.commit_unit(unit, 0.0)

    def test_commit_wrong_offset_raises(self, sched):
        sched.gradient_ready(5, 0.1)
        unit = TransferUnit(segments=(Segment(grad=5, offset=100.0, nbytes=10.0),))
        with pytest.raises(SchedulingError):
            sched.commit_unit(unit, 0.1)

    def test_commit_oversized_segment_raises(self, sched):
        sched.gradient_ready(5, 0.1)
        size = sched.size_of(5)
        unit = TransferUnit(segments=(Segment(grad=5, offset=0.0, nbytes=size * 2),))
        with pytest.raises(SchedulingError):
            sched.commit_unit(unit, 0.1)

    def test_partial_then_continuation_ok(self, sched):
        sched.gradient_ready(5, 0.1)
        size = sched.size_of(5)
        first = TransferUnit(segments=(Segment(grad=5, offset=0.0, nbytes=size / 2),))
        sched.commit_unit(first, 0.1)
        second = TransferUnit(
            segments=(Segment(grad=5, offset=size / 2, nbytes=size / 2),)
        )
        sched.commit_unit(second, 0.2)
        assert sched.remaining_bytes(5) == 0.0

    def test_out_of_order_continuation_raises(self, sched):
        sched.gradient_ready(5, 0.1)
        size = sched.size_of(5)
        first = TransferUnit(segments=(Segment(grad=5, offset=0.0, nbytes=size / 2),))
        sched.commit_unit(first, 0.1)
        bad = TransferUnit(segments=(Segment(grad=5, offset=0.0, nbytes=size / 4),))
        with pytest.raises(SchedulingError):
            sched.commit_unit(bad, 0.2)


class TestIterationLifecycle:
    def test_begin_with_unsent_bytes_raises(self, sched, schedule):
        sched.gradient_ready(5, 0.1)
        with pytest.raises(SchedulingError):
            sched.begin_iteration(1, schedule, 1.0)

    def test_begin_after_full_drain_ok(self, sched, schedule):
        for g in range(8):
            sched.gradient_ready(g, 0.1)
        while True:
            unit = sched.propose_unit(0.2)
            if unit is None:
                break
            sched.commit_unit(unit, 0.2)
        sched.begin_iteration(1, schedule, 1.0)
        assert sched.ready_grads == []

    def test_default_hooks_are_noops(self, sched, schedule):
        sched.gradient_ready(5, 0.1)
        unit = sched.propose_unit(0.1)
        sched.commit_unit(unit, 0.1)
        sched.unit_sent(unit, 0.2)
        sched.pull_completed(5, 10.0, 0.3)
        sched.grant_probe(0.4)
        sched.end_iteration(0, 1.0, 1.0)
        assert sched.pull_batch_limit(0.0) is None
