"""Unit tests for the ByteScheduler (credit flow control) scheduler."""

import numpy as np
import pytest

from repro.agg.kvstore import KVStore
from repro.errors import ConfigurationError
from repro.models.compute import build_compute_profile
from repro.quantities import MB
from repro.sched.bytescheduler import ByteSchedulerScheduler


@pytest.fixture
def schedule(tiny_model, tiny_device):
    prof = build_compute_profile(tiny_model, tiny_device, batch_size=8)
    return KVStore().generation_schedule(prof)


def _drain_one(s, now=0.0):
    unit = s.propose_unit(now)
    if unit is not None:
        s.commit_unit(unit, now)
    return unit


class TestCreditBatching:
    def test_batch_bounded_by_credit(self, schedule):
        s = ByteSchedulerScheduler(credit=4 * MB, partition_size=1 * MB)
        s.begin_iteration(0, schedule, 0.0)
        for g in (5, 6, 7):  # 8 MB + 4 KB + 4 KB
            s.gradient_ready(g, 0.0)
        unit = s.propose_unit(0.0)
        assert unit.total_bytes <= 4 * MB + 1e-9
        assert unit.segments[0].grad == 5

    def test_batch_spans_gradients_in_priority_order(self, schedule):
        s = ByteSchedulerScheduler(credit=8 * MB, partition_size=1 * MB)
        s.begin_iteration(0, schedule, 0.0)
        for g in (2, 4, 3):  # 6 MB, 64 KB, 3 MB
            s.gradient_ready(g, 0.0)
        unit = s.propose_unit(0.0)
        assert list(unit.grads)[:2] == [2, 3]

    def test_flow_control_stalls_at_credit(self, schedule):
        s = ByteSchedulerScheduler(credit=4 * MB, partition_size=1 * MB)
        s.begin_iteration(0, schedule, 0.0)
        s.gradient_ready(5, 0.0)  # 8 MB
        first = _drain_one(s)
        assert first is not None
        # Outstanding == credit: no further proposals.
        assert s.propose_unit(0.1) is None

    def test_pull_replenishes_credit(self, schedule):
        s = ByteSchedulerScheduler(credit=4 * MB, partition_size=1 * MB)
        s.begin_iteration(0, schedule, 0.0)
        s.gradient_ready(5, 0.0)
        _drain_one(s)
        assert s.propose_unit(0.1) is None
        s.pull_completed(5, 2 * MB, 0.2)
        unit = s.propose_unit(0.2)
        assert unit is not None
        assert unit.total_bytes <= 2 * MB + 1e-9

    def test_probe_extends_window(self, schedule):
        s = ByteSchedulerScheduler(credit=4 * MB, partition_size=1 * MB)
        s.begin_iteration(0, schedule, 0.0)
        s.gradient_ready(5, 0.0)
        _drain_one(s)
        assert s.propose_unit(0.1) is None
        s.grant_probe(0.2)
        unit = s.propose_unit(0.2)
        assert unit is not None
        assert unit.total_bytes <= 1 * MB + 1e-9  # one partition per probe

    def test_probe_allowance_resets_on_feedback(self, schedule):
        s = ByteSchedulerScheduler(credit=4 * MB, partition_size=1 * MB)
        s.begin_iteration(0, schedule, 0.0)
        s.gradient_ready(5, 0.0)
        _drain_one(s)
        s.grant_probe(0.1)
        _drain_one(s, 0.1)
        s.pull_completed(5, 1 * MB, 0.2)
        assert s._probe_allowance == 0.0

    def test_outstanding_resets_per_iteration(self, schedule):
        s = ByteSchedulerScheduler(credit=40 * MB, partition_size=1 * MB)
        s.begin_iteration(0, schedule, 0.0)
        for g in range(8):
            s.gradient_ready(g, 0.0)
        while _drain_one(s) is not None:
            pass
        s.begin_iteration(1, schedule, 1.0)
        assert s._outstanding == 0.0

    def test_pull_batch_limit_tracks_credit(self):
        s = ByteSchedulerScheduler(credit=5 * MB)
        assert s.pull_batch_limit(0.0) == 5 * MB


class TestAutoTuning:
    def test_credit_history_recorded(self, schedule):
        s = ByteSchedulerScheduler(credit=4 * MB)
        s.begin_iteration(0, schedule, 0.0)
        assert s.credit_history == [(0, 4 * MB)]

    def test_autotune_changes_credit(self, schedule):
        rng = np.random.default_rng(0)
        s = ByteSchedulerScheduler(auto_tune=True, tune_every=1, rng=rng)
        credits = [s.credit]
        for i in range(6):
            s.begin_iteration(i, schedule, float(i))
            for g in range(8):
                s.gradient_ready(g, float(i))
            while _drain_one(s, float(i)) is not None:
                s.pull_completed(0, 100 * MB, float(i))  # keep window open
            s.end_iteration(i, 1.0 + 0.1 * i, float(i) + 0.5)
            credits.append(s.credit)
        assert len(set(round(c) for c in credits)) > 1

    def test_autotune_respects_bounds(self, schedule):
        rng = np.random.default_rng(1)
        s = ByteSchedulerScheduler(
            auto_tune=True, tune_every=1, credit_bounds=(2 * MB, 8 * MB), rng=rng
        )
        assert 2 * MB <= s.credit <= 8 * MB * (1 + 1e-9)

    def test_tune_every_batches_observations(self, schedule):
        rng = np.random.default_rng(2)
        s = ByteSchedulerScheduler(auto_tune=True, tune_every=3, rng=rng)
        c0 = s.credit
        s.end_iteration(0, 1.0, 0.0)
        s.end_iteration(1, 1.0, 0.0)
        assert s.credit == c0  # not enough observations yet
        s.end_iteration(2, 1.0, 0.0)
        assert s._optimizer.num_observations == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(credit=0.0),
            dict(partition_size=0.0),
            dict(tune_every=0),
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ConfigurationError):
            ByteSchedulerScheduler(**kwargs)
