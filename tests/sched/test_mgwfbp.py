"""Unit tests for the MG-WFBP merged-gradient baseline."""

import pytest

from repro.agg.kvstore import KVStore
from repro.errors import ConfigurationError
from repro.models.compute import build_compute_profile
from repro.quantities import MB
from repro.sched.mgwfbp import MGWFBPScheduler


@pytest.fixture
def schedule(tiny_model, tiny_device):
    prof = build_compute_profile(tiny_model, tiny_device, batch_size=8)
    return KVStore().generation_schedule(prof)


def test_merges_consecutive_ready_gradients(schedule):
    s = MGWFBPScheduler(merge_bytes=32 * MB)
    s.begin_iteration(0, schedule, 0.0)
    for g in (7, 6, 5):
        s.gradient_ready(g, 0.0)
    unit = s.propose_unit(0.0)
    assert unit.grads == (7, 6, 5)  # generation order, merged
    s.commit_unit(unit, 0.0)
    assert s.propose_unit(0.0) is None


def test_merge_capped_by_merge_bytes(schedule):
    s = MGWFBPScheduler(merge_bytes=9 * MB)
    s.begin_iteration(0, schedule, 0.0)
    for g in (7, 6, 5, 4, 3):  # sizes 4KB, 4KB, 8MB, 64KB, 3MB
        s.gradient_ready(g, 0.0)
    unit = s.propose_unit(0.0)
    assert unit.total_bytes <= 9 * MB
    s.commit_unit(unit, 0.0)
    rest = s.propose_unit(0.0)
    assert rest is not None  # remainder follows in a second message


def test_priority_blind_ordering(schedule):
    """Unlike P3/Prophet, a late high-priority gradient waits its turn."""
    s = MGWFBPScheduler(merge_bytes=1)  # no merging: one tensor per message
    s.begin_iteration(0, schedule, 0.0)
    s.gradient_ready(7, 0.0)
    s.gradient_ready(0, 0.1)  # gradient 0 arrives second
    unit = s.propose_unit(0.1)
    assert unit.grads == (7,)


def test_whole_tensors_only(schedule):
    s = MGWFBPScheduler()
    s.begin_iteration(0, schedule, 0.0)
    s.gradient_ready(5, 0.0)
    unit = s.propose_unit(0.0)
    assert unit.segments[0].offset == 0.0
    assert unit.segments[0].nbytes == pytest.approx(schedule.sizes[5])


def test_pull_batch_limit_matches_merge(schedule):
    s = MGWFBPScheduler(merge_bytes=7 * MB)
    assert s.pull_batch_limit(0.0) == 7 * MB


def test_invalid_merge_bytes():
    with pytest.raises(ConfigurationError):
        MGWFBPScheduler(merge_bytes=0.0)


def test_full_training_run(tiny_config):
    from repro.cluster.trainer import run_training
    from repro.workloads.presets import mgwfbp_factory

    result = run_training(tiny_config, mgwfbp_factory())
    assert result.training_rate(skip=1) > 0
