"""Unit tests for the online Prophet scheduler."""

import numpy as np
import pytest

from repro.agg.kvstore import KVStore
from repro.core.profiler import JobProfile
from repro.errors import ConfigurationError
from repro.models.compute import build_compute_profile
from repro.net.tcp import TCPParams
from repro.quantities import MB
from repro.sched.prophet_sched import ProphetScheduler


@pytest.fixture
def schedule(tiny_model, tiny_device):
    prof = build_compute_profile(tiny_model, tiny_device, batch_size=8)
    return KVStore().generation_schedule(prof)


@pytest.fixture
def profile(schedule):
    return JobProfile.from_generation_schedule(schedule)


TCP = TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=1.0)


def make_prophet(profile, bandwidth=125e6, **kwargs) -> ProphetScheduler:
    return ProphetScheduler(
        bandwidth_provider=lambda: bandwidth,
        profile=profile,
        tcp=TCP,
        **kwargs,
    )


def _ready_bucket(s, schedule, bucket_idx, now):
    for g in schedule.buckets[bucket_idx]:
        s.gradient_ready(g, now)


class TestBackwardPhase:
    def test_packs_block_within_interval(self, schedule, profile):
        s = make_prophet(profile, bandwidth=1e9)  # plenty of bandwidth
        s.begin_iteration(0, schedule, now=0.0)
        t0 = float(schedule.c[schedule.buckets[0][0]])
        _ready_bucket(s, schedule, 0, t0)
        unit = s.propose_unit(t0)
        assert unit is not None
        # With abundant bandwidth the whole burst fits in one block.
        assert set(unit.grads) == set(schedule.buckets[0])

    def test_idles_when_nothing_fits(self, schedule, profile):
        s = make_prophet(profile, bandwidth=1e3)  # 1 KB/s: nothing fits
        s.begin_iteration(0, schedule, now=0.0)
        t0 = float(schedule.c[schedule.buckets[0][0]])
        _ready_bucket(s, schedule, 0, t0)
        assert s.propose_unit(t0) is None

    def test_slices_gradient_to_fill_interval(self, schedule, profile):
        # Bandwidth such that only part of the first burst fits.
        interval = float(
            schedule.c[schedule.buckets[1][0]] - schedule.c[schedule.buckets[0][0]]
        )
        burst_bytes = sum(schedule.sizes[g] for g in schedule.buckets[0])
        bandwidth = (burst_bytes / 2) / interval
        s = make_prophet(profile, bandwidth=bandwidth, slice_bytes=0.5 * MB)
        s.begin_iteration(0, schedule, now=0.0)
        t0 = float(schedule.c[schedule.buckets[0][0]])
        _ready_bucket(s, schedule, 0, t0)
        unit = s.propose_unit(t0)
        assert unit is not None
        assert unit.total_bytes < burst_bytes
        # Last segment may be a partial slice of a gradient.
        last = unit.segments[-1]
        assert last.nbytes <= schedule.sizes[last.grad]

    def test_no_lower_priority_bypass(self, schedule, profile):
        """Packing stops at the first non-fitting gradient."""
        s = make_prophet(profile, bandwidth=125e6, slice_bytes=1 * MB)
        s.begin_iteration(0, schedule, now=0.0)
        t0 = float(schedule.c[schedule.buckets[0][0]])
        _ready_bucket(s, schedule, 0, t0)
        unit = s.propose_unit(t0)
        if unit is not None:
            grads = list(unit.grads)
            # Must be a priority-contiguous prefix of the ready set.
            assert grads == sorted(grads)
            assert grads == s.ready_grads[: len(grads)]


class TestCriticalAndForwardPhase:
    def _drain_backward(self, s, schedule):
        """Signal all buckets except the last (which holds gradient 0)."""
        for b in range(len(schedule.buckets) - 1):
            t = float(schedule.c[schedule.buckets[b][0]])
            _ready_bucket(s, schedule, b, t)
            while True:
                unit = s.propose_unit(t)
                if unit is None:
                    break
                s.commit_unit(unit, t)

    def test_gradient_zero_sent_alone_immediately(self, schedule, profile):
        s = make_prophet(profile)
        s.begin_iteration(0, schedule, now=0.0)
        self._drain_backward(s, schedule)
        t_last = float(schedule.c[0])
        _ready_bucket(s, schedule, len(schedule.buckets) - 1, t_last)
        unit = s.propose_unit(t_last)
        assert unit is not None
        assert unit.grads == (0,)
        assert unit.total_bytes == pytest.approx(schedule.sizes[0])

    def test_forward_phase_drains_by_priority_in_blocks(self, schedule, profile):
        s = make_prophet(profile, forward_block_bytes=4 * MB)
        s.begin_iteration(0, schedule, now=0.0)
        self._drain_backward(s, schedule)
        t_last = float(schedule.c[0])
        _ready_bucket(s, schedule, len(schedule.buckets) - 1, t_last)
        sent: list[int] = []
        while True:
            unit = s.propose_unit(t_last)
            if unit is None:
                break
            s.commit_unit(unit, t_last)
            assert unit.total_bytes <= max(
                4 * MB, max(schedule.sizes[g] for g in unit.grads)
            ) + 1e-6
            sent.extend(unit.grads)
        assert sent == sorted(sent)
        assert s.pending_bytes == 0.0


class TestWarmupFallback:
    def test_fallback_is_fifo_until_profile_ready(self, schedule):
        s = ProphetScheduler(
            bandwidth_provider=lambda: 125e6,
            profile=None,
            profile_iterations=2,
            tcp=TCP,
        )
        assert not s.active
        s.begin_iteration(0, schedule, now=0.0)
        s.gradient_ready(7, 0.0)
        s.gradient_ready(5, 0.0)  # arrival order 7 then 5
        unit = s.propose_unit(0.0)
        assert unit.grads == (7,)
        s.commit_unit(unit, 0.0)
        assert s.propose_unit(0.0).grads == (5,)

    def test_profile_builds_after_warmup(self, schedule):
        s = ProphetScheduler(
            bandwidth_provider=lambda: 125e6,
            profile=None,
            profile_iterations=2,
            tcp=TCP,
        )
        for it in range(2):
            s.begin_iteration(it, schedule, now=float(it))
            for b, bucket in enumerate(schedule.buckets):
                t = float(it) + float(schedule.c[bucket[0]])
                for g in bucket:
                    s.gradient_ready(g, t)
            while (unit := s.propose_unit(float(it) + 1.0)) is not None:
                s.commit_unit(unit, float(it) + 1.0)
            s.end_iteration(it, 1.0, float(it) + 1.0)
        assert s.active
        assert np.allclose(s.profile.c, schedule.c, atol=1e-9)

    def test_planned_iterations_counted(self, schedule, profile):
        s = make_prophet(profile)
        s.begin_iteration(0, schedule, now=0.0)
        assert s.planned_iterations == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(forward_block_bytes=0.0),
            dict(guard=-1.0),
            dict(round_trip_factor=0.5),
            dict(slice_bytes=0.0),
            dict(pull_batch_bytes=0.0),
        ],
    )
    def test_invalid_params(self, profile, kwargs):
        with pytest.raises(ConfigurationError):
            make_prophet(profile, **kwargs)

    def test_pull_batch_limit_forward_phase(self, profile, schedule):
        s = make_prophet(profile, pull_batch_bytes=3 * MB)
        s.begin_iteration(0, schedule, 0.0)
        for bucket in schedule.buckets:
            for g in bucket:
                s.gradient_ready(g, float(schedule.c[bucket[0]]))
        # gradient 0 signalled -> forward phase -> fixed cap.
        assert s.pull_batch_limit(float(schedule.c[0])) == 3 * MB

    def test_pull_batch_limit_backward_is_interval_bounded(self, profile, schedule):
        s = make_prophet(profile, pull_batch_bytes=3 * MB, slice_bytes=0.25 * MB)
        s.begin_iteration(0, schedule, 0.0)
        t0 = float(schedule.c[schedule.buckets[0][0]])
        for g in schedule.buckets[0]:
            s.gradient_ready(g, t0)
        limit = s.pull_batch_limit(t0)
        assert limit is not None
        assert 0.25 * MB <= limit <= 12 * MB + 1e-6
