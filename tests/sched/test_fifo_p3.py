"""Unit tests for the FIFO (default MXNet) and P3 schedulers."""

import pytest

from repro.agg.kvstore import KVStore
from repro.errors import ConfigurationError
from repro.models.compute import build_compute_profile
from repro.quantities import MB
from repro.sched.fifo import FIFOScheduler
from repro.sched.p3 import P3Scheduler


@pytest.fixture
def schedule(tiny_model, tiny_device):
    prof = build_compute_profile(tiny_model, tiny_device, batch_size=8)
    return KVStore().generation_schedule(prof)


class TestFIFO:
    def test_serves_in_arrival_order(self, schedule):
        s = FIFOScheduler()
        s.begin_iteration(0, schedule, 0.0)
        for g in (7, 5, 6):  # arrival order, not priority order
            s.gradient_ready(g, 0.0)
        served = []
        while True:
            unit = s.propose_unit(0.1)
            if unit is None:
                break
            s.commit_unit(unit, 0.1)
            served.append(unit.segments[0].grad)
        assert served == [7, 5, 6]

    def test_whole_tensor_units(self, schedule):
        s = FIFOScheduler()
        s.begin_iteration(0, schedule, 0.0)
        s.gradient_ready(3, 0.0)
        unit = s.propose_unit(0.0)
        assert unit.total_bytes == pytest.approx(schedule.sizes[3])
        assert unit.segments[0].offset == 0.0

    def test_is_fifo_channel(self):
        assert FIFOScheduler().fifo_channel is True
        assert FIFOScheduler().unit_sync_rtts == 0.0

    def test_queue_resets_per_iteration(self, schedule):
        s = FIFOScheduler()
        s.begin_iteration(0, schedule, 0.0)
        for g in range(8):
            s.gradient_ready(g, 0.0)
        while (unit := s.propose_unit(0.0)) is not None:
            s.commit_unit(unit, 0.0)
        s.begin_iteration(1, schedule, 1.0)
        assert s.propose_unit(1.0) is None


class TestP3:
    def test_partitions_bounded_by_partition_size(self, schedule):
        s = P3Scheduler(partition_size=1 * MB)
        s.begin_iteration(0, schedule, 0.0)
        s.gradient_ready(3, 0.0)  # 8 MB gradient? (index 3 = l2.p0, 3 MB)
        unit = s.propose_unit(0.0)
        assert unit.total_bytes == pytest.approx(1 * MB)
        assert len(unit.segments) == 1

    def test_strict_priority_among_ready(self, schedule):
        s = P3Scheduler(partition_size=1 * MB)
        s.begin_iteration(0, schedule, 0.0)
        s.gradient_ready(6, 0.0)
        s.gradient_ready(2, 0.0)
        unit = s.propose_unit(0.0)
        assert unit.segments[0].grad == 2

    def test_preemption_at_partition_boundary(self, schedule):
        s = P3Scheduler(partition_size=1 * MB)
        s.begin_iteration(0, schedule, 0.0)
        s.gradient_ready(6, 0.0)
        first = s.propose_unit(0.0)
        s.commit_unit(first, 0.0)
        s.gradient_ready(1, 0.1)  # higher priority arrives mid-stream
        nxt = s.propose_unit(0.1)
        assert nxt.segments[0].grad == 1

    def test_partitions_resume_at_offset(self, schedule):
        s = P3Scheduler(partition_size=1 * MB)
        s.begin_iteration(0, schedule, 0.0)
        s.gradient_ready(5, 0.0)  # 8 MB gradient
        offsets = []
        for _ in range(3):
            unit = s.propose_unit(0.0)
            s.commit_unit(unit, 0.0)
            offsets.append(unit.segments[0].offset)
        assert offsets == [0.0, pytest.approx(1 * MB), pytest.approx(2 * MB)]

    def test_tail_smaller_than_partition(self, schedule):
        s = P3Scheduler(partition_size=2 * MB)
        s.begin_iteration(0, schedule, 0.0)
        s.gradient_ready(4, 0.0)  # 64 KB gradient
        unit = s.propose_unit(0.0)
        assert unit.total_bytes == pytest.approx(schedule.sizes[4])

    def test_blocking_sync_configured(self):
        assert P3Scheduler().unit_sync_rtts == 2.0
        assert P3Scheduler(sync_rtts=0.0).unit_sync_rtts == 0.0

    def test_invalid_params_raise(self):
        with pytest.raises(ConfigurationError):
            P3Scheduler(partition_size=0.0)
        with pytest.raises(ConfigurationError):
            P3Scheduler(sync_rtts=-1.0)
