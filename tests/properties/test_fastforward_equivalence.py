"""Property-based exactness tests for steady-state fast-forward.

The whole value of :mod:`repro.sim.fastforward` rests on one claim: an
engaged fast-forward run is **bit-identical** to the unrolled run — not
statistically close, identical.  These tests pit the two paths against
each other across seeds, scheduling strategies, and all four backends
(single-PS star, sharded PS tier, ring allreduce, hierarchical
allreduce) and compare every observable artifact: the end time, every
iteration row, every GPU interval, every gradient record, every link
transfer record and byte counter, and the derived summary metrics.

``repr`` is used as the float canonicalizer: it is the shortest exact
form, so two runs compare equal iff they are bit-identical (NaN fields
in warmup rows also compare equal this way).
"""

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.trainer import run_training
from repro.workloads.presets import EXTENDED_FACTORIES, paper_config

STRATEGIES = ("mxnet-fifo", "p3", "prophet", "mg-wfbp")
BACKENDS = ("star", "sharded", "ring", "hierarchical")

QUANTUM = 2.0**-24


def _links(topology):
    links = []
    for attr in ("uplinks", "downlinks", "links", "local_links", "global_links"):
        group = getattr(topology, attr, None)
        if not group:
            continue
        for item in group:
            links.extend(item) if isinstance(item, list) else links.append(item)
    return links


def canon_result(result) -> tuple:
    """Everything observable about a run, reduced to comparable form."""
    rec = result.recorder
    n = result.config.n_workers
    rows = [tuple(repr(r) for r in rec.worker_iterations(w)) for w in range(n)]
    gpu = [repr(rec.gpu_busy_intervals(w).tolist()) for w in range(n)]
    grads = [tuple(repr(g) for g in rec.gradient_records(worker=w)) for w in range(n)]
    links = [
        (tuple(repr(t) for t in link.records), link.total_bytes, link._busy_accum)
        for link in _links(result.topology)
    ]
    summary = {k: repr(v) for k, v in result.summary().items()}
    return (repr(result.end_time), rows, gpu, grads, links, summary)


def ff_config(backend: str, strategy: str, seed: int, *, fastforward: bool):
    overrides: dict = {}
    n_workers = 2
    n_iterations = 8
    if backend == "sharded":
        overrides["n_servers"] = 2
        # Sharded settles with period 3-4; two-tier detection confirms at
        # 2p and verifies at 3p, so leave room for at least one skipped
        # cycle after that.
        n_iterations = 16
    elif backend == "ring":
        overrides.update(backend="allreduce", collective="ring")
    elif backend == "hierarchical":
        n_workers = 4
        overrides.update(
            backend="allreduce", collective="hierarchical", collective_group_size=2
        )
    config = paper_config(
        "resnet18",
        32,
        n_workers=n_workers,
        n_iterations=n_iterations,
        seed=seed,
        jitter_std=0.0,
        time_quantum=QUANTUM,
        **overrides,
    )
    return config if fastforward else replace(config, fastforward=False)


@given(
    seed=st.integers(0, 3),
    strategy=st.sampled_from(STRATEGIES),
    backend=st.sampled_from(BACKENDS),
)
@settings(max_examples=10, deadline=None)
def test_fastforward_is_bit_identical(seed, strategy, backend):
    factory = EXTENDED_FACTORIES[strategy]
    fast = run_training(ff_config(backend, strategy, seed, fastforward=True), factory)
    slow = run_training(ff_config(backend, strategy, seed, fastforward=False), factory)
    assert slow.fastforward_stats is None
    assert fast.fastforward_stats is not None
    assert canon_result(fast) == canon_result(slow)


def test_fastforward_engages_on_every_backend():
    """The property above holds vacuously if FF never engages — pin that
    each backend actually reaches its periodic fixed point and skips."""
    for backend in BACKENDS:
        factory = EXTENDED_FACTORIES["prophet"]
        fast = run_training(ff_config(backend, "prophet", 0, fastforward=True), factory)
        stats = fast.fastforward_stats
        assert stats is not None and stats["engaged"], (backend, stats)
        assert stats["period"] >= 1
        assert stats["iterations_skipped"] == stats["period"] * stats["cycles_skipped"]
        assert stats["iterations_skipped"] >= 1, (backend, stats)
