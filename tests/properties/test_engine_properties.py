"""Property-based tests for the event engine and RNG streams."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.rng import spawn_rng


@given(times=st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(times):
    eng = Engine()
    fired: list[float] = []
    for t in times:
        eng.schedule(t, lambda t=t: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(
    times=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=30),
    cancel_mask=st.lists(st.booleans(), min_size=2, max_size=30),
)
@settings(max_examples=200, deadline=None)
def test_cancellation_removes_exactly_the_cancelled(times, cancel_mask):
    eng = Engine()
    fired: list[int] = []
    events = [eng.schedule(t, fired.append, i) for i, t in enumerate(times)]
    kept = set(range(len(times)))
    for i, (ev, cancel) in enumerate(zip(events, cancel_mask)):
        if cancel:
            ev.cancel()
            kept.discard(i)
    eng.run()
    assert set(fired) == kept


@given(
    seed=st.integers(0, 2**31 - 1),
    label=st.text(min_size=0, max_size=20),
    idx=st.integers(0, 1000),
)
@settings(max_examples=100, deadline=None)
def test_spawned_streams_reproducible(seed, label, idx):
    a = spawn_rng(seed, label, idx).random(4)
    b = spawn_rng(seed, label, idx).random(4)
    assert np.array_equal(a, b)
