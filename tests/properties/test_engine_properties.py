"""Property-based tests for the event engine and RNG streams.

The calendar-queue engine is checked against a straight ``heapq``
reference implementation: any scenario of schedules, cancels (including
storms large enough to trigger tombstone compaction), nested mid-run
scheduling, and segmented ``run(until=...)`` horizons must produce the
identical ``(time, label)`` firing sequence, clock, and pending count.
"""

import heapq
import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.rng import spawn_rng


@given(times=st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=1, max_size=50))
@settings(max_examples=200, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(times):
    eng = Engine()
    fired: list[float] = []
    for t in times:
        eng.schedule(t, lambda t=t: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(
    times=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=30),
    cancel_mask=st.lists(st.booleans(), min_size=2, max_size=30),
)
@settings(max_examples=200, deadline=None)
def test_cancellation_removes_exactly_the_cancelled(times, cancel_mask):
    eng = Engine()
    fired: list[int] = []
    events = [eng.schedule(t, fired.append, i) for i, t in enumerate(times)]
    kept = set(range(len(times)))
    for i, (ev, cancel) in enumerate(zip(events, cancel_mask)):
        if cancel:
            ev.cancel()
            kept.discard(i)
    eng.run()
    assert set(fired) == kept


@given(
    seed=st.integers(0, 2**31 - 1),
    label=st.text(min_size=0, max_size=20),
    idx=st.integers(0, 1000),
)
@settings(max_examples=100, deadline=None)
def test_spawned_streams_reproducible(seed, label, idx):
    a = spawn_rng(seed, label, idx).random(4)
    b = spawn_rng(seed, label, idx).random(4)
    assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# Calendar queue vs. reference heap equivalence
# ----------------------------------------------------------------------
class _RefEvent(list):
    """``[time, seq, fn, args, alive]`` — seq unique, so heap compares
    never reach the uncomparable fn slot."""

    __slots__ = ("engine",)

    def cancel(self):
        if self[4]:
            self[4] = False
            self.engine._pending -= 1

    @property
    def alive(self):
        return self[4]


class _RefEngine:
    """Textbook tombstone-heap DES: the behavioural reference."""

    def __init__(self):
        self._heap = []
        self._seq = itertools.count()
        self._pending = 0
        self.now = 0.0

    def schedule(self, time, fn, *args):
        assert time >= self.now
        ev = _RefEvent([time, next(self._seq), fn, args, True])
        ev.engine = self
        heapq.heappush(self._heap, ev)
        self._pending += 1
        return ev

    def run(self, until=None):
        heap = self._heap
        while heap:
            if until is not None and heap[0][0] > until:
                break
            ev = heapq.heappop(heap)
            if not ev[4]:
                continue
            self._pending -= 1
            self.now = ev[0]
            ev[2](*ev[3])
        if until is not None and self.now < until:
            self.now = until

    def pending(self):
        return self._pending


# A small time grid forces exact ties (same-bucket FIFO ordering) while
# the continuous component exercises bucket sizing and far-future spill.
_time_strategy = st.one_of(
    st.sampled_from([0.0, 1e-6, 2e-6, 5e-6, 1e-5, 1e-3, 1.0, 1e3]),
    st.floats(0.0, 1e3, allow_nan=False, allow_infinity=False),
)

_spec_strategy = st.fixed_dictionaries(
    {
        "children": st.lists(st.floats(0.0, 1e-3, allow_nan=False), max_size=3),
        "cancel": st.lists(st.integers(0, 10_000), max_size=40),
    }
)


def _run_scenario(eng, scenario):
    """Drive one engine through the scenario; return its observable log."""
    log = []
    registry = []

    def fire(label, spec):
        log.append((eng.now, label))
        for k in spec["cancel"]:
            registry[k % len(registry)].cancel()
        for j, delay in enumerate(spec["children"]):
            registry.append(
                eng.schedule(eng.now + delay, fire, f"{label}.{j}", _LEAF)
            )

    for i, (t, spec) in enumerate(scenario["initial"]):
        registry.append(eng.schedule(t, fire, f"e{i}", spec))
    for k in scenario["precancel"]:
        registry[k % len(registry)].cancel()
    for until in scenario["horizons"]:
        eng.run(until=until)
        log.append(("segment", eng.now, eng.pending()))
    eng.run()
    log.append(("end", eng.now, eng.pending()))
    return log


_LEAF = {"children": (), "cancel": ()}


@given(
    initial=st.lists(
        st.tuples(_time_strategy, _spec_strategy), min_size=1, max_size=60
    ),
    precancel=st.lists(st.integers(0, 10_000), max_size=80),
    horizons=st.lists(st.floats(0.0, 2e3, allow_nan=False), max_size=4),
)
@settings(max_examples=150, deadline=None)
def test_calendar_engine_matches_reference_heap(initial, precancel, horizons):
    scenario = {
        "initial": initial,
        "precancel": precancel,
        "horizons": sorted(horizons),
    }
    ref_log = _run_scenario(_RefEngine(), scenario)
    cal_log = _run_scenario(Engine(), scenario)
    assert cal_log == ref_log
