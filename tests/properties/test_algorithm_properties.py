"""Property-based tests: Algorithm 1 and the stepwise machinery uphold
their invariants on arbitrary synthetic jobs."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.agg.stepwise import detect_blocks
from repro.core.algorithm import plan_schedule
from repro.core.intervals import block_intervals
from repro.core.perf_model import PerfModelInputs, check_constraints
from repro.core.profiler import JobProfile
from repro.net.tcp import TCPParams
from repro.quantities import MB

TCP = TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=1.0)


@st.composite
def synthetic_profiles(draw):
    """A stepwise job: random block structure, sizes, and intervals."""
    n_blocks = draw(st.integers(2, 6))
    block_sizes = [draw(st.integers(1, 5)) for _ in range(n_blocks)]
    n = sum(block_sizes)
    intervals = [draw(st.floats(1e-3, 0.2)) for _ in range(n_blocks)]
    # Build c: gradient 0 generated last; blocks in generation order carry
    # descending index ranges.
    c = np.empty(n)
    idx = n
    t = 0.0
    for size, gap in zip(block_sizes, intervals):
        t += gap
        for _ in range(size):
            idx -= 1
            c[idx] = t
    sizes = np.array([draw(st.floats(1e3, 32 * MB)) for _ in range(n)])
    return JobProfile(c=c, sizes=sizes, iterations=1)


@given(profile=synthetic_profiles(), gbps_tenths=st.integers(2, 100))
@settings(max_examples=100, deadline=None)
def test_plan_always_satisfies_paper_constraints(profile, gbps_tenths):
    bandwidth = gbps_tenths * 1.25e7  # 0.2 .. 10 Gbps in bytes/s
    plan = plan_schedule(profile, bandwidth, TCP)
    inputs = PerfModelInputs(
        c=profile.c,
        t=plan.start_times,
        e=plan.durations,
        fp=np.zeros(profile.num_gradients),
        total_bwd=float(profile.c.max()),
    )
    check_constraints(inputs, tol=1e-7)


@given(profile=synthetic_profiles())
@settings(max_examples=100, deadline=None)
def test_plan_partitions_gradients(profile):
    plan = plan_schedule(profile, 1.25e8, TCP)
    grads = sorted(t.grad for t in plan.transfers)
    assert grads == list(range(profile.num_gradients))
    block_grads = sorted(g for b in plan.blocks for g in b.grads)
    assert block_grads == grads


@given(profile=synthetic_profiles())
@settings(max_examples=100, deadline=None)
def test_block_intervals_match_staircase(profile):
    a = block_intervals(profile.c)
    blocks = detect_blocks(profile.c)
    # Inside one block, all gradients share one interval value.
    for block in blocks:
        vals = a[block]
        assert np.all(vals == vals[0])
    # Final block (containing gradient 0) is unbounded.
    assert np.all(np.isinf(a[blocks[-1]]))
    # Finite intervals are positive.
    finite = a[np.isfinite(a)]
    assert np.all(finite > 0)


@given(
    c=st.lists(st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=40),
    eps=st.floats(0.0, 0.5),
)
@settings(max_examples=200, deadline=None)
def test_detect_blocks_is_a_partition_in_generation_order(c, eps):
    arr = np.asarray(c)
    assume(len(arr) > 0)
    blocks = detect_blocks(arr, eps=eps)
    flat = [i for b in blocks for i in b]
    assert sorted(flat) == list(range(len(arr)))
    # Block representative times are nondecreasing.
    reps = [arr[b[0]] for b in blocks]
    assert reps == sorted(reps)
    # Members within a block are within eps * (block span chain) of its head
    # under the chaining rule: each member within eps of the block's first.
    for b in blocks:
        head = arr[b[0]]
        assert np.all(np.abs(arr[b] - head) <= eps + 1e-12)
