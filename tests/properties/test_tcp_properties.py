"""Property-based tests for the TCP model (the paper's f(s, B))."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.tcp import TCPParams, effective_bandwidth, transfer_time
from repro.quantities import Gbps

params_strategy = st.builds(
    TCPParams,
    rtt=st.floats(1e-5, 5e-3),
    mss=st.floats(500, 9000),
    init_cwnd_segments=st.floats(1, 40),
    handshake_rtts=st.floats(0, 4),
    fixed_overhead=st.floats(0, 2e-3),
    goodput=st.floats(0.2, 1.0),
)

sizes = st.floats(min_value=0.0, max_value=1e10, allow_nan=False)
bandwidths = st.floats(min_value=1e5, max_value=1e11)


@given(s=sizes, b=bandwidths, p=params_strategy)
@settings(max_examples=200, deadline=None)
def test_transfer_time_nonnegative_and_finite(s, b, p):
    t = transfer_time(s, b, p)
    assert np.isfinite(t)
    assert t >= 0.0
    if s >= 1.0:  # sub-byte denormals may underflow to a zero duration
        assert t > 0.0


@given(
    s1=st.floats(1.0, 1e9),
    s2=st.floats(1.0, 1e9),
    b=bandwidths,
    p=params_strategy,
)
@settings(max_examples=200, deadline=None)
def test_transfer_time_monotone_in_size(s1, s2, b, p):
    lo, hi = sorted((s1, s2))
    assert transfer_time(lo, b, p) <= transfer_time(hi, b, p) + 1e-12


@given(
    s=st.floats(1.0, 1e9),
    b1=bandwidths,
    b2=bandwidths,
    p=params_strategy,
)
@settings(max_examples=200, deadline=None)
def test_transfer_time_antitone_in_bandwidth(s, b1, b2, p):
    lo, hi = sorted((b1, b2))
    assert transfer_time(s, hi, p) <= transfer_time(s, lo, p) + 1e-12


@given(s=st.floats(1.0, 1e9), b=bandwidths, p=params_strategy)
@settings(max_examples=200, deadline=None)
def test_effective_bandwidth_bounded_by_goodput_line_rate(s, b, p):
    eff = effective_bandwidth(s, b, p)
    assert 0.0 <= eff <= b * p.goodput * (1 + 1e-9)


@given(s=st.floats(1.0, 1e9), b=bandwidths, p=params_strategy)
@settings(max_examples=200, deadline=None)
def test_warm_never_slower_than_cold(s, b, p):
    assert transfer_time(s, b, p, warm=True) <= transfer_time(s, b, p) + 1e-12


@given(
    s1=st.floats(1.0, 5e8),
    s2=st.floats(1.0, 5e8),
    b=bandwidths,
    p=params_strategy,
)
@settings(max_examples=200, deadline=None)
def test_batching_subadditive(s1, s2, b, p):
    """One message carrying s1+s2 is never slower than two messages."""
    combined = transfer_time(s1 + s2, b, p, warm=True)
    split = transfer_time(s1, b, p, warm=True) + transfer_time(s2, b, p, warm=True)
    assert combined <= split * (1 + 1e-9) + 1e-12


@given(s=st.lists(st.floats(0.0, 1e8), min_size=1, max_size=20), p=params_strategy)
@settings(max_examples=100, deadline=None)
def test_vectorization_consistency(s, p):
    arr = np.asarray(s)
    vec = np.atleast_1d(transfer_time(arr, 1 * Gbps, p))
    for size, t in zip(s, vec):
        assert transfer_time(float(size), 1 * Gbps, p) == float(t)


@given(
    s=st.lists(st.floats(0.0, 5e9), min_size=1, max_size=20),
    b=bandwidths,
    warm=st.booleans(),
    p=params_strategy,
)
@settings(max_examples=150, deadline=None)
def test_scalar_fast_path_bit_equals_vectorized(s, b, warm, p):
    """The memoized scalar path is bit-identical to the numpy loop for
    any (size, bandwidth, params, warm) — this is what licenses the
    simulator's hot loop to skip numpy entirely."""
    arr = np.asarray(s)
    vec = np.atleast_1d(transfer_time(arr, b, p, warm=warm))
    for size, t in zip(s, vec):
        assert transfer_time(float(size), b, p, warm=warm) == float(t)
