"""Property-based tests: performance-model recursion and metric curves."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.perf_model import PerfModelInputs, evaluate_schedule, wait_time
from repro.metrics.utilization import busy_curve, windowed_utilization


@st.composite
def schedule_inputs(draw):
    n = draw(st.integers(1, 30))
    c = np.sort(draw(st.lists(
        st.floats(0.0, 5.0), min_size=n, max_size=n
    )))[::-1].copy()  # c decreasing in index (gradient 0 last)
    t = c + np.array(draw(st.lists(st.floats(0.0, 2.0), min_size=n, max_size=n)))
    e = np.array(draw(st.lists(st.floats(1e-6, 1.0), min_size=n, max_size=n)))
    fp = np.array(draw(st.lists(st.floats(0.0, 0.5), min_size=n, max_size=n)))
    return PerfModelInputs(c=c, t=t, e=e, fp=fp, total_bwd=float(c.max()))


@given(inputs=schedule_inputs())
@settings(max_examples=200, deadline=None)
def test_wait_time_at_least_first_update_latency(inputs):
    """T_wait >= u(0) - c(0) = (t(0)-c(0)) + 2E(0) > 0."""
    w = wait_time(inputs)
    assert w >= (inputs.t[0] - inputs.c[0]) + 2 * inputs.e[0] - 1e-9


@given(inputs=schedule_inputs())
@settings(max_examples=200, deadline=None)
def test_forward_completions_monotone(inputs):
    ev = evaluate_schedule(inputs)
    assert np.all(np.diff(ev.p) >= -1e-12)
    assert np.all(ev.p >= ev.u - 1e-12 + 0.0)  # p(i) >= u(i) + fp(i) >= u(i)


@given(inputs=schedule_inputs())
@settings(max_examples=200, deadline=None)
def test_delaying_a_transfer_never_reduces_wait(inputs):
    """Monotonicity: pushing any single start time later cannot help."""
    base = wait_time(inputs)
    idx = len(inputs.t) // 2
    t2 = inputs.t.copy()
    t2[idx] += 0.5
    delayed = wait_time(
        PerfModelInputs(
            c=inputs.c, t=t2, e=inputs.e, fp=inputs.fp, total_bwd=inputs.total_bwd
        )
    )
    assert delayed >= base - 1e-9


@given(
    intervals=st.lists(
        st.tuples(st.floats(0.0, 50.0), st.floats(0.0, 10.0)).map(
            lambda p: (p[0], p[0] + p[1])
        ),
        min_size=0,
        max_size=30,
    ),
    window=st.floats(0.1, 10.0),
)
@settings(max_examples=200, deadline=None)
def test_windowed_utilization_always_in_unit_interval(intervals, window):
    arr = np.asarray(sorted(intervals)) if intervals else np.empty((0, 2))
    samples = np.linspace(0.1, 60.0, 25)
    util = windowed_utilization(arr, samples, window)
    assert np.all(util >= 0.0)
    assert np.all(util <= 1.0)


@given(
    intervals=st.lists(
        st.tuples(st.floats(0.0, 50.0), st.floats(1e-3, 10.0)).map(
            lambda p: (p[0], p[0] + p[1])
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=200, deadline=None)
def test_busy_curve_nondecreasing(intervals):
    arr = np.asarray(sorted(intervals))
    times, cum = busy_curve(arr)
    assert np.all(np.diff(cum) >= -1e-12)
    assert np.all(np.diff(times) >= -1e-12)
    # Total busy equals union length, bounded by the sum of durations.
    assert cum[-1] <= sum(e - s for s, e in arr) + 1e-9
