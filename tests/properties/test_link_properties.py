"""Property-based tests for :class:`repro.net.link.BandwidthSchedule`.

The cursor-accelerated ``value()`` must agree with the textbook numpy
reference (``searchsorted(side="right") - 1``, clamped to the first
segment) for *any* interleaving of forward and backward queries — the
cursor is an optimization for monotone simulation time, never a change
in semantics.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import BandwidthSchedule


@st.composite
def schedules(draw):
    """A valid schedule: strictly increasing times, positive bandwidths."""
    n = draw(st.integers(1, 12))
    deltas = draw(
        st.lists(st.floats(1e-6, 100.0), min_size=n, max_size=n)
    )
    start = draw(st.floats(0.0, 50.0))
    times = []
    t = start
    for d in deltas:
        times.append(t)
        t += d
    values = draw(
        st.lists(st.floats(1e-3, 1e12), min_size=n, max_size=n)
    )
    return [(t, b) for t, b in zip(times, values)]


def _reference_value(points, time):
    """Numpy reference lookup, independent of any cursor state."""
    times = np.array([t for t, _ in points])
    values = np.array([b for _, b in points])
    idx = int(np.searchsorted(times, time, side="right")) - 1
    return float(values[max(idx, 0)])


@given(
    points=schedules(),
    queries=st.lists(st.floats(0.0, 500.0), min_size=1, max_size=50),
)
@settings(max_examples=200, deadline=None)
def test_value_matches_numpy_reference(points, queries):
    sched = BandwidthSchedule(points)
    for q in queries:
        assert sched.value(q) == _reference_value(points, q)


@given(points=schedules(), queries=st.lists(st.floats(0.0, 500.0), min_size=2, max_size=30))
@settings(max_examples=100, deadline=None)
def test_query_order_is_irrelevant(points, queries):
    """Sorted (monotone) and shuffled query orders give identical answers."""
    monotone = BandwidthSchedule(points)
    answers = {q: monotone.value(q) for q in sorted(queries)}
    shuffled = BandwidthSchedule(points)
    for q in reversed(queries):
        assert shuffled.value(q) == answers[q]


@given(points=schedules())
@settings(max_examples=100, deadline=None)
def test_boundary_queries_pick_right_segment(points):
    """Exactly-at-boundary queries belong to the segment that starts there."""
    sched = BandwidthSchedule(points)
    for t, b in points:
        assert sched.value(t) == b


# ----------------------------------------------------------------------
# Live mutation: set_level() interleaved with value() lookups
# ----------------------------------------------------------------------
class _NaiveSchedule:
    """Cursor-free oracle: a plain breakpoint list, full bisect per lookup.

    Mirrors the documented set_level semantics (truncate at-or-after,
    append unless it would duplicate the preceding level) without any of
    the cursor/version machinery under test.
    """

    def __init__(self, points):
        self.points = list(points)

    def set_level(self, time, bandwidth):
        self.points = [(t, b) for t, b in self.points if t < time]
        if not self.points or self.points[-1][1] != bandwidth:
            self.points.append((time, bandwidth))

    def value(self, time):
        return _reference_value(self.points, time)


@st.composite
def op_sequences(draw):
    """Interleaved (set_level | value) ops over a small time range."""
    n = draw(st.integers(1, 30))
    ops = []
    for _ in range(n):
        if draw(st.booleans()):
            ops.append(
                ("set", draw(st.floats(0.0, 100.0)), draw(st.floats(1e-3, 1e9)))
            )
        else:
            ops.append(("get", draw(st.floats(0.0, 200.0)), None))
    return ops


@given(points=schedules(), ops=op_sequences())
@settings(max_examples=300, deadline=None)
def test_set_level_interleaving_matches_naive_oracle(points, ops):
    """Any interleaving of re-levelling and (non-monotone) lookups agrees
    with the cursor-free oracle — the fleet fabric's mutation pattern must
    never let a stale cursor surface a wrong bandwidth or an IndexError."""
    sched = BandwidthSchedule(points)
    oracle = _NaiveSchedule(points)
    for op, time, bandwidth in ops:
        if op == "set":
            sched.set_level(time, bandwidth)
            oracle.set_level(time, bandwidth)
            assert list(sched.points) == oracle.points
        else:
            assert sched.value(time) == oracle.value(time)
