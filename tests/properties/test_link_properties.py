"""Property-based tests for :class:`repro.net.link.BandwidthSchedule`.

The cursor-accelerated ``value()`` must agree with the textbook numpy
reference (``searchsorted(side="right") - 1``, clamped to the first
segment) for *any* interleaving of forward and backward queries — the
cursor is an optimization for monotone simulation time, never a change
in semantics.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.link import BandwidthSchedule


@st.composite
def schedules(draw):
    """A valid schedule: strictly increasing times, positive bandwidths."""
    n = draw(st.integers(1, 12))
    deltas = draw(
        st.lists(st.floats(1e-6, 100.0), min_size=n, max_size=n)
    )
    start = draw(st.floats(0.0, 50.0))
    times = []
    t = start
    for d in deltas:
        times.append(t)
        t += d
    values = draw(
        st.lists(st.floats(1e-3, 1e12), min_size=n, max_size=n)
    )
    return [(t, b) for t, b in zip(times, values)]


def _reference_value(points, time):
    """Numpy reference lookup, independent of any cursor state."""
    times = np.array([t for t, _ in points])
    values = np.array([b for _, b in points])
    idx = int(np.searchsorted(times, time, side="right")) - 1
    return float(values[max(idx, 0)])


@given(
    points=schedules(),
    queries=st.lists(st.floats(0.0, 500.0), min_size=1, max_size=50),
)
@settings(max_examples=200, deadline=None)
def test_value_matches_numpy_reference(points, queries):
    sched = BandwidthSchedule(points)
    for q in queries:
        assert sched.value(q) == _reference_value(points, q)


@given(points=schedules(), queries=st.lists(st.floats(0.0, 500.0), min_size=2, max_size=30))
@settings(max_examples=100, deadline=None)
def test_query_order_is_irrelevant(points, queries):
    """Sorted (monotone) and shuffled query orders give identical answers."""
    monotone = BandwidthSchedule(points)
    answers = {q: monotone.value(q) for q in sorted(queries)}
    shuffled = BandwidthSchedule(points)
    for q in reversed(queries):
        assert shuffled.value(q) == answers[q]


@given(points=schedules())
@settings(max_examples=100, deadline=None)
def test_boundary_queries_pick_right_segment(points):
    """Exactly-at-boundary queries belong to the segment that starts there."""
    sched = BandwidthSchedule(points)
    for t, b in points:
        assert sched.value(t) == b
