"""Property-based tests: every scheduler upholds its contract on random
ready/drain sequences.

The harness interleaves gradient-ready events with propose/commit drains
in random order and asserts the conservation laws: every byte is sent
exactly once, segments are contiguous per gradient, units are never empty,
and priority strategies never send a lower-priority *whole* unit while a
strictly higher-priority gradient has unsent bytes and would fit.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agg.kvstore import GenerationSchedule
from repro.core.profiler import JobProfile
from repro.net.tcp import TCPParams
from repro.quantities import MB
from repro.sched.bytescheduler import ByteSchedulerScheduler
from repro.sched.fifo import FIFOScheduler
from repro.sched.mgwfbp import MGWFBPScheduler
from repro.sched.p3 import P3Scheduler
from repro.sched.prophet_sched import ProphetScheduler

TCP = TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=1.0)


@st.composite
def random_jobs(draw):
    """Random gradient sizes + a random staircase of generation times."""
    n = draw(st.integers(2, 12))
    sizes = np.array([draw(st.floats(1 * KB_, 8 * MB)) for _ in range(n)])
    n_buckets = draw(st.integers(1, n))
    boundaries = sorted(
        draw(
            st.lists(
                st.integers(1, n - 1),
                min_size=n_buckets - 1,
                max_size=n_buckets - 1,
                unique=True,
            )
        )
    )
    # Partition indices [0..n) into buckets; bucket order = generation
    # order (descending index blocks).
    cuts = [0] + boundaries + [n]
    groups = [list(range(cuts[i], cuts[i + 1])) for i in range(len(cuts) - 1)]
    groups = groups[::-1]  # highest indices generate first
    c = np.empty(n)
    t = 0.0
    for group in groups:
        t += draw(st.floats(1e-3, 0.1))
        for g in group:
            c[g] = t
    buckets = tuple(tuple(sorted(g, reverse=True)) for g in groups)
    bucket_of = np.empty(n, dtype=np.int64)
    for b, members in enumerate(buckets):
        for g in members:
            bucket_of[g] = b
    schedule = GenerationSchedule(
        c=c,
        raw=c.copy(),
        bucket_of=bucket_of,
        buckets=buckets,
        sizes=sizes,
        backward_time=float(c.max()),
    )
    return schedule


KB_ = 1024.0

SCHEDULER_BUILDERS = [
    lambda schedule: FIFOScheduler(),
    lambda schedule: P3Scheduler(partition_size=1 * MB),
    lambda schedule: MGWFBPScheduler(merge_bytes=4 * MB),
    lambda schedule: ByteSchedulerScheduler(credit=4 * MB, partition_size=1 * MB),
    lambda schedule: ProphetScheduler(
        bandwidth_provider=lambda: 1.25e8,
        profile=JobProfile.from_generation_schedule(schedule),
        tcp=TCP,
    ),
]


@given(
    schedule=random_jobs(),
    builder_idx=st.integers(0, len(SCHEDULER_BUILDERS) - 1),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=150, deadline=None)
def test_drain_conserves_bytes(schedule, builder_idx, seed):
    sched = SCHEDULER_BUILDERS[builder_idx](schedule)
    sched.begin_iteration(0, schedule, 0.0)
    rng = np.random.default_rng(seed)

    sent = np.zeros(schedule.num_gradients)
    pending_buckets = list(schedule.buckets)
    now = 0.0
    stall_guard = 0
    while pending_buckets or sched.pending_bytes > 0:
        do_ready = pending_buckets and (sched.pending_bytes == 0 or rng.random() < 0.4)
        if do_ready:
            bucket = pending_buckets.pop(0)
            now = max(now, float(schedule.c[bucket[0]]))
            for g in bucket:
                sched.gradient_ready(g, now)
            continue
        unit = sched.propose_unit(now)
        if unit is None:
            # Prophet may idle for a predicted boundary; advance time.
            now += 0.05
            stall_guard += 1
            assert stall_guard < 1000, "scheduler never drained"
            # ByteScheduler flow control: replenish as if pulls returned.
            for g in range(schedule.num_gradients):
                if sent[g] > 0:
                    sched.pull_completed(g, sent[g], now)
            continue
        stall_guard = 0
        # Unit validity: non-empty, positive segment sizes.
        assert unit.segments
        for seg in unit.segments:
            assert seg.nbytes > 0
            assert seg.offset == sent[seg.grad]  # contiguous, in order
        sched.commit_unit(unit, now)
        for seg in unit.segments:
            sent[seg.grad] += seg.nbytes
        sched.unit_sent(unit, now)
        now += 1e-4

    assert np.allclose(sent, schedule.sizes)
    assert sched.pending_bytes == 0


@given(schedule=random_jobs(), seed=st.integers(0, 2**16))
@settings(max_examples=100, deadline=None)
def test_p3_strict_priority_among_ready(schedule, seed):
    """P3 always proposes the most urgent ready gradient."""
    sched = P3Scheduler(partition_size=1 * MB)
    sched.begin_iteration(0, schedule, 0.0)
    rng = np.random.default_rng(seed)
    pending_buckets = list(schedule.buckets)
    now = 0.0
    while pending_buckets or sched.pending_bytes > 0:
        if pending_buckets and (sched.pending_bytes == 0 or rng.random() < 0.5):
            bucket = pending_buckets.pop(0)
            now = max(now, float(schedule.c[bucket[0]]))
            for g in bucket:
                sched.gradient_ready(g, now)
            continue
        unit = sched.propose_unit(now)
        assert unit is not None
        assert unit.segments[0].grad == min(sched.ready_grads)
        sched.commit_unit(unit, now)
