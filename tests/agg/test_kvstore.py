"""Unit tests for the KV store and generation schedules."""

import numpy as np
import pytest

from repro.agg.kvstore import KVStore
from repro.agg.policies import ExplicitGroupsPolicy, TimeWindowPolicy
from repro.errors import ConfigurationError
from repro.models.compute import build_compute_profile


@pytest.fixture
def profile(tiny_model, tiny_device):
    return build_compute_profile(tiny_model, tiny_device, batch_size=8)


def test_schedule_covers_all_gradients(profile):
    sched = KVStore().generation_schedule(profile)
    assert sched.num_gradients == 8
    assert sched.sizes.sum() == pytest.approx(profile.model.param_bytes())


def test_c_is_raw_plus_flush_cost(profile):
    ks = KVStore(policy=TimeWindowPolicy(0.0), flush_fixed=1e-3)
    sched = ks.generation_schedule(profile)
    assert np.all(sched.c >= sched.raw)
    # Last-generated bucket flushes at its raw time + fixed cost.
    first_bucket = sched.buckets[0]
    assert sched.c[first_bucket[0]] == pytest.approx(
        sched.raw[first_bucket[0]] + 1e-3
    )


def test_per_byte_flush_cost_slows_big_buckets(profile):
    cheap = KVStore(flush_per_byte=0.0).generation_schedule(profile)
    costly = KVStore(flush_per_byte=1e-9).generation_schedule(profile)
    assert costly.c.max() > cheap.c.max()


def test_flush_times_monotone_in_generation_order(profile):
    sched = KVStore(policy=TimeWindowPolicy(0.0)).generation_schedule(profile)
    flush_times = [sched.c[b[0]] for b in sched.buckets]
    assert flush_times == sorted(flush_times)


def test_gradient_zero_generated_last(profile):
    sched = KVStore().generation_schedule(profile)
    assert sched.c[0] == pytest.approx(sched.c.max())
    assert 0 in sched.buckets[-1]


def test_generation_order_descends_indices_within_bucket(profile):
    sched = KVStore(policy=TimeWindowPolicy(0.0)).generation_schedule(profile)
    order = list(sched.generation_order)
    assert order[0] == 7
    assert order[-1] == 0
    # Full order: strictly the reverse-index order for this model.
    assert order == sorted(order, reverse=True)


def test_bucket_of_matches_buckets(profile):
    sched = KVStore().generation_schedule(profile)
    for b, bucket in enumerate(sched.buckets):
        for g in bucket:
            assert sched.bucket_of[g] == b


def test_scaled_multiplies_times_not_sizes(profile):
    sched = KVStore().generation_schedule(profile)
    scaled = sched.scaled(2.0)
    assert np.allclose(scaled.c, 2 * sched.c)
    assert np.allclose(scaled.raw, 2 * sched.raw)
    assert scaled.backward_time == pytest.approx(2 * sched.backward_time)
    assert np.array_equal(scaled.sizes, sched.sizes)
    assert scaled.buckets == sched.buckets


def test_explicit_groups_policy_roundtrip(profile):
    policy = ExplicitGroupsPolicy(((4, 5, 6, 7), (0, 1, 2, 3)))
    sched = KVStore(policy=policy).generation_schedule(profile)
    assert sched.num_blocks == 2


def test_invalid_costs_raise():
    with pytest.raises(ConfigurationError):
        KVStore(flush_fixed=-1.0)
    with pytest.raises(ConfigurationError):
        KVStore(flush_per_byte=-1.0)


def test_bad_policy_partition_rejected(profile):
    class BrokenPolicy:
        def buckets(self, model, grads, raw):
            return [[g.index for g in grads[:-1]]]  # drops one gradient

    with pytest.raises(ConfigurationError):
        KVStore(policy=BrokenPolicy()).generation_schedule(profile)


def test_out_of_order_buckets_rejected(profile):
    class OutOfOrderPolicy:
        def buckets(self, model, grads, raw):
            return [[0, 1, 2, 3], [4, 5, 6, 7]]  # gen order reversed

    with pytest.raises(ConfigurationError):
        KVStore(policy=OutOfOrderPolicy()).generation_schedule(profile)
