"""Unit tests for stepwise-pattern detection."""

import numpy as np
import pytest

from repro.agg.stepwise import block_summary, detect_blocks
from repro.errors import ConfigurationError


def test_detect_blocks_simple_staircase():
    # grad 0 generated last (largest c); grads 2,3 together; 1 alone.
    c = np.array([0.30, 0.20, 0.10, 0.10])
    blocks = detect_blocks(c)
    assert blocks == [[3, 2], [1], [0]]


def test_detect_blocks_eps_merges_near_ties():
    c = np.array([0.2, 0.10001, 0.1])
    assert detect_blocks(c, eps=1e-6) == [[2], [1], [0]]
    assert detect_blocks(c, eps=1e-3) == [[2, 1], [0]]


def test_detect_blocks_single_block():
    c = np.zeros(5)
    blocks = detect_blocks(c)
    assert blocks == [[4, 3, 2, 1, 0]]


def test_detect_blocks_orders_within_block_by_descending_index():
    c = np.array([0.1, 0.1, 0.1, 0.2])
    # grad 3 has larger c -> generated later?? No: larger c = later. Here
    # grads 0..2 share the earlier time? c[3]=0.2 is the LAST generation.
    blocks = detect_blocks(c)
    assert blocks == [[2, 1, 0], [3]]


def test_detect_blocks_validates_input():
    with pytest.raises(ConfigurationError):
        detect_blocks(np.array([]))
    with pytest.raises(ConfigurationError):
        detect_blocks(np.array([1.0]), eps=-1.0)


def test_block_summary_counts_and_intervals():
    c = np.array([0.35, 0.25, 0.10, 0.10])
    s = block_summary(c)
    assert s.num_gradients == 4
    assert s.num_blocks == 3
    assert s.block_sizes == (2, 1, 1)
    assert s.block_times == (0.10, 0.25, 0.35)
    assert s.intervals == pytest.approx((0.15, 0.10))
    assert s.mean_interval == pytest.approx(0.125)
    assert s.span == pytest.approx(0.25)


def test_block_summary_single_block_degenerate():
    s = block_summary(np.zeros(3))
    assert s.num_blocks == 1
    assert s.intervals == ()
    assert s.mean_interval == 0.0
    assert s.span == 0.0
