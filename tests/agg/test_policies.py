"""Unit tests for aggregation (bucketing) policies."""

import numpy as np
import pytest

from repro.agg.policies import (
    ByteThresholdPolicy,
    ExplicitGroupsPolicy,
    LayerCountPolicy,
    ModulePrefixPolicy,
    TimeWindowPolicy,
)
from repro.errors import ConfigurationError
from repro.models.compute import build_compute_profile
from repro.models.gradients import gradient_table
from repro.models.registry import get_model
from repro.quantities import MB


@pytest.fixture
def tiny_inputs(tiny_model, tiny_device):
    prof = build_compute_profile(tiny_model, tiny_device, batch_size=8)
    grads = gradient_table(tiny_model)
    completions = prof.bwd_completion_times()
    raw = np.array([completions[g.layer_index] for g in grads])
    return tiny_model, grads, raw


def _assert_partition(buckets, grads):
    flat = sorted(i for b in buckets for i in b)
    assert flat == sorted(g.index for g in grads)
    maxes = [max(b) for b in buckets]
    assert maxes == sorted(maxes, reverse=True)  # generation order


class TestTimeWindowPolicy:
    def test_zero_window_groups_simultaneous_only(self, tiny_inputs):
        model, grads, raw = tiny_inputs
        buckets = TimeWindowPolicy(0.0).buckets(model, grads, raw)
        _assert_partition(buckets, grads)
        # Tensors of the same layer share raw times -> grouped together.
        assert [sorted(b, reverse=True) for b in buckets] == [
            [7, 6, 5], [4, 3], [2], [1, 0],
        ]

    def test_huge_window_single_bucket(self, tiny_inputs):
        model, grads, raw = tiny_inputs
        buckets = TimeWindowPolicy(1e9).buckets(model, grads, raw)
        assert len(buckets) == 1

    def test_negative_window_raises(self):
        with pytest.raises(ConfigurationError):
            TimeWindowPolicy(-1.0)


class TestByteThresholdPolicy:
    def test_flushes_at_threshold(self, tiny_inputs):
        model, grads, raw = tiny_inputs
        buckets = ByteThresholdPolicy(6 * MB).buckets(model, grads, raw)
        _assert_partition(buckets, grads)
        by_index = {g.index: g for g in grads}
        for bucket in buckets[:-1]:
            assert sum(by_index[i].nbytes for i in bucket) >= 6 * MB

    def test_invalid_threshold_raises(self):
        with pytest.raises(ConfigurationError):
            ByteThresholdPolicy(0.0)


class TestLayerCountPolicy:
    def test_one_layer_per_bucket(self, tiny_inputs):
        model, grads, raw = tiny_inputs
        buckets = LayerCountPolicy(1).buckets(model, grads, raw)
        assert len(buckets) == 4  # four parameterized layers

    def test_two_layers_per_bucket(self, tiny_inputs):
        model, grads, raw = tiny_inputs
        buckets = LayerCountPolicy(2).buckets(model, grads, raw)
        assert len(buckets) == 2

    def test_invalid_count_raises(self):
        with pytest.raises(ConfigurationError):
            LayerCountPolicy(0)


class TestModulePrefixPolicy:
    def test_resnet_blocks_group_by_module(self, tiny_device):
        model = get_model("resnet50")
        grads = gradient_table(model)
        prof = build_compute_profile(model, tiny_device, batch_size=8)
        completions = prof.bwd_completion_times()
        raw = np.array([completions[g.layer_index] for g in grads])
        buckets = ModulePrefixPolicy(2).buckets(model, grads, raw)
        _assert_partition(buckets, grads)
        # ~16 residual blocks + stem + fc -> around 18-19 buckets.
        assert 15 <= len(buckets) <= 22

    def test_invalid_depth_raises(self):
        with pytest.raises(ConfigurationError):
            ModulePrefixPolicy(0)


class TestExplicitGroupsPolicy:
    def test_valid_partition(self, tiny_inputs):
        model, grads, raw = tiny_inputs
        policy = ExplicitGroupsPolicy(((5, 6, 7), (2, 3, 4), (0, 1)))
        buckets = policy.buckets(model, grads, raw)
        _assert_partition(buckets, grads)
        assert buckets[0] == [7, 6, 5]

    def test_groups_sorted_into_generation_order(self, tiny_inputs):
        model, grads, raw = tiny_inputs
        policy = ExplicitGroupsPolicy(((0, 1), (5, 6, 7), (2, 3, 4)))
        buckets = policy.buckets(model, grads, raw)
        assert buckets[0] == [7, 6, 5]
        assert buckets[-1] == [1, 0]

    def test_incomplete_partition_raises(self, tiny_inputs):
        model, grads, raw = tiny_inputs
        policy = ExplicitGroupsPolicy(((0, 1),))
        with pytest.raises(ConfigurationError):
            policy.buckets(model, grads, raw)

    def test_overlapping_groups_raise(self):
        with pytest.raises(ConfigurationError):
            ExplicitGroupsPolicy(((0, 1), (1, 2)))

    def test_empty_groups_raise(self):
        with pytest.raises(ConfigurationError):
            ExplicitGroupsPolicy(())
