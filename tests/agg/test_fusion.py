"""Unit tests for the MG-WFBP optimal-merging fusion policy."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.agg.fusion import MGWFBPFusionPolicy
from repro.errors import ConfigurationError
from repro.models.compute import build_compute_profile
from repro.models.gradients import gradient_table
from repro.net.tcp import TCPParams, transfer_time
from repro.quantities import Gbps, MB


@pytest.fixture
def tiny_inputs(tiny_model, tiny_device):
    prof = build_compute_profile(tiny_model, tiny_device, batch_size=8)
    grads = gradient_table(tiny_model)
    completions = prof.bwd_completion_times()
    raw = np.array([completions[g.layer_index] for g in grads])
    return tiny_model, grads, raw


def _assert_partition(buckets, grads):
    flat = sorted(i for b in buckets for i in b)
    assert flat == sorted(g.index for g in grads)
    maxes = [max(b) for b in buckets]
    assert maxes == sorted(maxes, reverse=True)  # generation order


def test_produces_valid_partition(tiny_inputs):
    model, grads, raw = tiny_inputs
    policy = MGWFBPFusionPolicy(bandwidth=3 * Gbps)
    buckets = policy.buckets(model, grads, raw)
    _assert_partition(buckets, grads)
    # Each bucket is a contiguous block of the generation order: the
    # greedy walk never reorders, only cuts.
    order = [g.index for g in sorted(grads, key=lambda g: -g.index)]
    flat = [i for b in buckets for i in b]
    assert flat == order


def test_startup_is_cold_single_byte_cost():
    tcp = TCPParams(rtt=0.5e-3, fixed_overhead=0.2e-3, goodput=0.8)
    policy = MGWFBPFusionPolicy(tcp=tcp, bandwidth=3 * Gbps)
    assert policy.startup == pytest.approx(
        transfer_time(1.0, 3 * Gbps, tcp, warm=False)
    )


def test_bigger_startup_merges_more(tiny_inputs):
    """A costlier per-message setup can only coarsen the partition."""
    model, grads, raw = tiny_inputs
    cheap = TCPParams(rtt=0.01e-3, fixed_overhead=0.0, goodput=1.0)
    dear = TCPParams(rtt=5e-3, handshake_rtts=2.0, fixed_overhead=2e-3, goodput=0.5)
    n_cheap = len(MGWFBPFusionPolicy(tcp=cheap, bandwidth=3 * Gbps).buckets(
        model, grads, raw
    ))
    n_dear = len(MGWFBPFusionPolicy(tcp=dear, bandwidth=3 * Gbps).buckets(
        model, grads, raw
    ))
    assert n_dear <= n_cheap
    assert n_dear < len(grads)  # the dear path actually merged something


def test_instant_generation_merges_everything(tiny_inputs):
    """If every gradient is ready at t=0, one bucket holds the model."""
    model, grads, _ = tiny_inputs
    raw = np.zeros(len(grads))
    policy = MGWFBPFusionPolicy(bandwidth=3 * Gbps)
    buckets = policy.buckets(model, grads, raw)
    assert len(buckets) == 1


def test_distant_generation_never_merges(tiny_inputs):
    """Gradients spaced far beyond startup + transfer each stand alone."""
    model, grads, _ = tiny_inputs
    # 10 s apart: no bucket could still be waiting on its startup.
    # raw_times indexed by gradient index; index n-1 generates first.
    n = len(grads)
    raw = np.array([(n - 1 - i) * 10.0 for i in range(n)])
    policy = MGWFBPFusionPolicy(bandwidth=3 * Gbps)
    buckets = policy.buckets(model, grads, raw)
    assert len(buckets) == n


def test_max_merge_bytes_caps_buckets(tiny_inputs):
    model, grads, _ = tiny_inputs
    raw = np.zeros(len(grads))  # maximum merge pressure
    cap = 4 * MB
    policy = MGWFBPFusionPolicy(bandwidth=3 * Gbps, max_merge_bytes=cap)
    sizes = {g.index: g.nbytes for g in grads}
    for bucket in policy.buckets(model, grads, raw):
        total = sum(sizes[i] for i in bucket)
        # A single gradient may exceed the cap (it cannot be split);
        # merged buckets may not.
        assert len(bucket) == 1 or total <= cap


def test_validation():
    with pytest.raises(ConfigurationError):
        MGWFBPFusionPolicy(bandwidth=0.0)
    with pytest.raises(ConfigurationError):
        MGWFBPFusionPolicy(bandwidth=-1.0)
    with pytest.raises(ConfigurationError):
        MGWFBPFusionPolicy(max_merge_bytes=0.0)
    assert "MGWFBPFusionPolicy" in repr(MGWFBPFusionPolicy())


def test_usable_as_agg_policy_end_to_end(tiny_config):
    """The policy plugs into TrainingConfig.agg_policy on both backends."""
    from repro.cluster.trainer import run_training
    from repro.workloads.presets import EXTENDED_FACTORIES

    policy = MGWFBPFusionPolicy(tcp=tiny_config.tcp, bandwidth=tiny_config.bandwidth)
    for backend in ("ps", "allreduce"):
        config = replace(tiny_config, agg_policy=policy, backend=backend)
        result = run_training(config, EXTENDED_FACTORIES["mxnet-fifo"])
        assert result.training_rate(skip=1) > 0
