"""Shape tests for the future-work experiments and extended baselines."""

import pytest

from repro.experiments import asp, devices
from repro.experiments.common import run_strategies
from repro.quantities import Gbps
from repro.workloads.presets import EXTENDED_FACTORIES, paper_config

pytestmark = pytest.mark.shape


class TestAspExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return asp.run(n_iterations=8)

    def test_all_modes_complete(self, rows):
        assert [r.sync_mode for r in rows] == ["bsp", "ssp", "asp"]
        for r in rows:
            assert all(v > 0 for v in r.rates.values())

    def test_relaxed_sync_never_slower(self, rows):
        by_mode = {r.sync_mode: r for r in rows}
        for strategy in ("prophet", "bytescheduler"):
            assert (
                by_mode["asp"].rates[strategy]
                >= by_mode["bsp"].rates[strategy] * 0.98
            )

    def test_stepwise_pattern_is_sync_independent(self):
        """The staircase comes from compute + aggregation, not sync."""
        from repro.agg import KVStore, block_summary
        from repro.models import build_compute_profile, get_model
        from repro.workloads.presets import paper_device

        profile = build_compute_profile(
            get_model("resnet50"), paper_device("resnet50"), 64
        )
        summary = block_summary(KVStore().generation_schedule(profile).c)
        # Identical under every sync mode because it never touches the PS.
        assert summary.num_blocks >= 10


class TestDevicesExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return devices.run(n_iterations=8)

    def test_faster_devices_much_faster_compute(self, rows):
        computes = [r.compute_s for r in rows]
        assert computes[0] > 5 * computes[1] > 5 * computes[2] / 5

    def test_comm_bound_regime_on_fast_gpus(self, rows):
        m60, v100, a100 = rows
        assert abs(m60.prophet_vs_mxnet) < 0.05  # compute-bound: tie
        assert v100.prophet_vs_mxnet > 0.15      # comm-bound: priority pays
        assert a100.prophet_vs_mxnet > 0.15

    def test_absolute_rates_scale_with_device(self, rows):
        assert rows[1].rates["prophet"] > 2 * rows[0].rates["prophet"]


class TestExtendedBaselines:
    def test_mgwfbp_between_fifo_and_prophet_at_crossover(self):
        config = paper_config(
            "resnet50", 64, bandwidth=3 * Gbps, n_iterations=10,
            record_gradients=False,
        )
        rates = run_strategies(config, EXTENDED_FACTORIES).rates
        # MG-WFBP fixes FIFO's message overhead but not its priority
        # blindness: above FIFO, at or below Prophet.
        assert rates["mg-wfbp"] > rates["mxnet-fifo"]
        assert rates["mg-wfbp"] <= rates["prophet"] * 1.03


class TestDynamicBandwidth:
    def test_prophet_adapts_best(self):
        from repro.experiments import dynamic

        res = dynamic.run(n_iterations=16)
        assert res.mean_rates["prophet"] >= res.mean_rates["bytescheduler"] * 0.99
        assert res.mean_rates["prophet"] > res.mean_rates["mxnet-fifo"]


class TestChaosExperiment:
    @pytest.fixture(scope="class")
    def res(self):
        from repro.experiments import chaos

        plan = chaos.default_plan(
            crash_at=0.4, restart_after=0.2, drop=0.03,
            flap_at=0.8, flap_duration=0.3, flap_factor=0.5,
            stall_at=1.2, stall_duration=0.1,
        )
        return chaos.run(
            model="resnet18", batch_size=16, n_iterations=5, plan=plan
        )

    def test_every_strategy_survives_the_cocktail(self, res):
        for name, retained in res.goodput_retained.items():
            assert 0.0 < retained <= 1.05, name

    def test_recovery_time_spans_the_outage(self, res):
        # The worker is down for restart_after seconds, so recovery can
        # never beat that; an unbounded recovery would mean a hang.
        for name, rec in res.recovery_time.items():
            assert rec >= 0.2, name
            assert rec < 5.0, name

    def test_faults_were_actually_injected(self, res):
        for name, stats in res.fault_stats.items():
            assert stats["crashes"] == 1, name
            assert stats["restarts"] == 1, name
            assert stats["push_drops"] + stats["pull_drops"] > 0, name
