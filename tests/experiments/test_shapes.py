"""Experiment-shape tests: the paper's qualitative findings must hold.

These run the real figure/table machinery at reduced scale (fewer
iterations, fewer sweep points) and assert the *orderings and trends* the
paper reports — who wins, where the crossovers fall — not absolute
numbers.  They are the regression net for the calibration in
``repro.workloads.presets``.
"""

import numpy as np
import pytest

from repro.experiments import fig3, fig4, fig5, fig12, hetero, table2
from repro.experiments.common import run_strategies
from repro.quantities import Gbps
from repro.workloads.presets import paper_config

pytestmark = pytest.mark.shape

N_ITER = 10


@pytest.fixture(scope="module")
def midband_rates():
    """All four strategies on ResNet-50 bs64 at 3 Gbps (the mid band)."""
    config = paper_config(
        "resnet50", 64, bandwidth=3 * Gbps, n_iterations=N_ITER,
        record_gradients=False,
    )
    return run_strategies(config)


class TestMidBandOrdering:
    def test_prophet_beats_bytescheduler(self, midband_rates):
        assert midband_rates.improvement(over="bytescheduler") > 0.0

    def test_prophet_beats_p3(self, midband_rates):
        # Paper Table 2 @3 Gbps: 60 vs 51.2 => +17%.
        assert midband_rates.improvement(over="p3") > 0.10

    def test_prophet_beats_mxnet(self, midband_rates):
        # Paper Sec. 5.3 text: +39% over MXNet at 3 Gbps (ResNet-18).
        assert midband_rates.improvement(over="mxnet-fifo") > 0.20

    def test_fifo_is_worst(self, midband_rates):
        rates = midband_rates.rates
        assert rates["mxnet-fifo"] == min(rates.values())


class TestBandwidthSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return table2.run(
            bandwidths_gbps=(1.0, 3.0, 10.0), n_iterations=N_ITER
        )

    def test_rates_increase_with_bandwidth(self, sweep):
        for strategy in ("prophet", "bytescheduler", "p3", "mxnet-fifo"):
            rates = sweep.rates(strategy)
            assert rates[0] < rates[1] <= rates[2] * 1.02

    def test_strategies_converge_at_high_bandwidth(self, sweep):
        high = sweep.rows[-1].rates
        assert max(high.values()) / min(high.values()) < 1.05

    def test_p3_penalty_largest_at_low_bandwidth(self, sweep):
        low, mid = sweep.rows[0], sweep.rows[1]
        assert low.rates["p3"] < low.rates["prophet"]
        assert mid.rates["p3"] < mid.rates["prophet"]

    def test_low_bandwidth_gap_smaller_than_midband(self, sweep):
        """Paper: Prophet's edge peaks mid-band (1G: +7%, 3G: +36%)."""
        low_gap = sweep.rows[0].improvement(over="p3")
        mid_gap = sweep.rows[1].improvement(over="p3")
        assert mid_gap > low_gap


class TestFig3Shapes:
    def test_small_partitions_collapse_p3(self):
        res = fig3.run_partition_sweep(
            partitions_mb=(0.25, 4.0), n_iterations=N_ITER
        )
        assert res.rates[0] < res.rates[1] * 0.9  # >=10% worse at 0.25 MB

    def test_autotune_fluctuates(self):
        res = fig3.run_autotune(n_iterations=24, tune_every=2)
        assert res.rate_spread > 0.05 * max(res.rates)
        assert len(set(np.round(res.credits_mb, 3))) > 1


class TestFig4Shapes:
    def test_resnet50_staircase(self):
        res = fig4.run()
        assert res.resnet50_summary.num_blocks >= 10
        assert res.resnet50_summary.num_gradients == 161
        assert res.resnet50_summary.mean_interval > 0

    def test_vgg19_matches_paper_blocks(self):
        res = fig4.run()
        assert res.vgg19_summary.num_blocks == 4
        assert res.vgg19_summary.block_sizes == (10, 14, 12, 2)


class TestFig5Shape:
    def test_strategy_ordering_on_toy(self):
        res = fig5.run()
        rows = res.by_strategy()
        # FIFO lets gradient 1 block gradient 0; Prophet does not.
        assert rows["prophet"].grad0_wait_ms < 1.0
        assert rows["mxnet-fifo"].grad0_wait_ms > 50.0
        # P3 preempts within one partition (a few ms at 1 Gbps).
        assert rows["p3"].grad0_wait_ms < rows["mxnet-fifo"].grad0_wait_ms
        # ByteScheduler preempts within one credit batch.
        assert rows["bytescheduler"].grad0_wait_ms < rows["mxnet-fifo"].grad0_wait_ms
        assert rows["prophet"].grad0_wait_ms <= rows["bytescheduler"].grad0_wait_ms


class TestScalability:
    def test_near_linear_worker_scaling(self):
        rows = fig12.run(worker_counts=(2, 6), n_iterations=N_ITER)
        per_worker = [r.per_worker_rate for r in rows]
        # Paper: 69.94 -> 68.83 from 2 to 8 workers (<2% drop).
        assert per_worker[1] > per_worker[0] * 0.95


class TestHeterogeneous:
    def test_gap_collapses_with_slow_worker(self):
        res = hetero.run(n_iterations=N_ITER)
        # Paper: Prophet +2.3% over ByteScheduler — the optimization space
        # collapses when one worker's channel saturates.  (The paper's +75%
        # over MXNet reflects baseline implementation overheads beyond this
        # substrate; our work-conserving FIFO stays within a few percent.)
        assert abs(res.prophet_vs_bytescheduler) < 0.10
        assert res.prophet_vs_mxnet > -0.02
        # Absolute rates land in the paper's reported band (~24-27 s/s).
        assert 20 < res.rates.rates["prophet"] < 30
