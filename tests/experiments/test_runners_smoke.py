"""Smoke tests: every experiment runner executes end-to-end at small scale.

The benchmarks exercise the full configurations; these keep `pytest tests/`
self-sufficient — each paper artifact's code path runs (and its result
object is structurally sound) in a few seconds total.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    fig2,
    fig3,
    fig8,
    fig9_10,
    fig11,
    fig12,
    fig13,
    overhead,
    table2,
    table3,
)

pytestmark = pytest.mark.shape

N = 6  # iterations: enough for a skip-2 measurement window


def test_fig2_runner():
    res = fig2.run(n_iterations=N)
    assert len(res.times) == len(res.gpu_utilization) == len(res.throughput_mb_s)
    assert 0 <= res.mean_utilization <= 1
    assert 0 <= res.idle_fraction <= 1


def test_fig3a_runner():
    res = fig3.run_partition_sweep(partitions_mb=(1.0, 8.0), n_iterations=N)
    assert len(res.rates) == 2
    assert res.best_partition_mb in (1.0, 8.0)


def test_fig3b_runner():
    res = fig3.run_autotune(n_iterations=10, tune_every=2)
    assert len(res.rates) == len(res.iterations) == len(res.credits_mb)
    assert res.rate_spread >= 0


def test_fig8_runner():
    rows = fig8.run(workloads=(("resnet18", 32),), n_iterations=N)
    assert len(rows) == 1
    assert rows[0].prophet_rate > 0 and rows[0].bytescheduler_rate > 0


def test_fig9_10_runner():
    res = fig9_10.run(n_iterations=N)
    assert 0 <= res.prophet.mean_utilization <= 1
    assert res.bytescheduler.mean_throughput_mb_s > 0
    assert np.isfinite(res.utilization_gain)
    assert np.isfinite(res.throughput_gain)


def test_fig11_runner():
    res = fig11.run(n_iterations=N, skip=2)
    rows = res.by_strategy()
    assert set(rows) == {"mxnet-fifo", "bytescheduler", "prophet"}
    for row in rows.values():
        assert len(row.grads) == 161
        assert np.all(np.isfinite(row.wait_ms))


def test_fig12_runner():
    rows = fig12.run(worker_counts=(2,), n_iterations=N)
    assert rows[0].aggregate_rate == pytest.approx(2 * rows[0].per_worker_rate)


def test_fig13_runner():
    res = fig13.run(profile_iterations=3, n_iterations=10)
    assert 0 <= res.prophet_early <= 1
    assert 0 <= res.bytescheduler_late <= 1
    assert res.prophet_rate > 0


def test_table2_runner():
    res = table2.run(bandwidths_gbps=(3.0,), n_iterations=N)
    assert len(res.rows) == 1
    assert set(res.rows[0].rates) == {
        "mxnet-fifo", "p3", "bytescheduler", "prophet",
    }


def test_table3_runner():
    rows = table3.run(workloads=(("resnet18", 32),), n_iterations=N)
    assert len(rows) == 1
    assert np.isfinite(rows[0].improvement)


def test_overhead_runners():
    rows = overhead.run_profiling_overhead(profile_iterations=3)
    assert len(rows) == 3
    assert all(r.profiling_seconds > 0 for r in rows)
    assert overhead.planning_time() < 0.1


def test_ablations_runner():
    rows = ablations.run(n_iterations=N)
    names = [r.name for r in rows]
    assert "baseline (shared channel)" in names
    assert all(r.rate > 0 for r in rows)


def test_experiment_mains_print(capsys):
    """Each main() prints a table (spot-check two cheap ones)."""
    from repro.experiments import fig4, fig5

    fig4.main()
    fig5.main()
    out = capsys.readouterr().out
    assert "Fig. 4" in out and "Fig. 5" in out


def test_scalability_runner():
    from repro.experiments import scalability

    rows = scalability.run(
        server_counts=(1, 2), model="resnet18", batch_size=32, n_iterations=N
    )
    assert [r.n_servers for r in rows] == [1, 2]
    assert all(r.training_rate > 0 for r in rows)
    # the whole point: widening the PS tier under a per-server NIC cap
    # shortens iterations
    assert rows[1].mean_iteration_s < rows[0].mean_iteration_s


def test_collective_runner():
    from repro.experiments import collective

    rows = collective.run(
        workloads=(("resnet18", 32),),
        collectives=("ring",),
        n_workers=3,
        n_iterations=N,
    )
    assert [r.strategy for r in rows] == list(collective.STRATEGIES)
    assert all(r.training_rate > 0 for r in rows)
    by_strategy = {r.strategy: r for r in rows}
    # the whole point: predictable scheduling beats FIFO on the ring too
    assert by_strategy["prophet"].training_rate > by_strategy["mxnet-fifo"].training_rate
