"""Unit tests for the stale-SGD convergence substrate."""

import numpy as np
import pytest

from repro.convergence.sgd import (
    QuadraticProblem,
    empirical_staleness_sampler,
    run_stale_sgd,
)
from repro.errors import ConfigurationError


class TestQuadraticProblem:
    def test_spectrum_spans_condition_number(self):
        p = QuadraticProblem(dim=10, condition_number=100.0)
        eigs = p.eigenvalues()
        assert eigs.min() == pytest.approx(1.0)
        assert eigs.max() == pytest.approx(100.0)
        assert len(eigs) == 10

    def test_loss_at_origin_is_zero(self):
        p = QuadraticProblem()
        assert p.loss(np.zeros(p.dim)) == 0.0

    def test_stable_lr_below_curvature_limit(self):
        p = QuadraticProblem(condition_number=50.0)
        assert p.stable_lr() <= 1.0 / p.eigenvalues().max()

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            QuadraticProblem(dim=0)
        with pytest.raises(ConfigurationError):
            QuadraticProblem(condition_number=0.5)


class TestStaleSGD:
    def test_synchronous_sgd_converges(self):
        p = QuadraticProblem()
        res = run_stale_sgd(p, lambda: 0, n_steps=2000, noise_std=0.0)
        assert not res.diverged
        assert res.losses[-1] < 1e-6 * res.losses[0]
        assert res.mean_staleness == 0.0

    def test_mild_staleness_comparable_convergence_at_small_lr(self):
        """In the stable regime, mild delay behaves like implicit momentum
        ("asynchrony begets momentum"): convergence stays within a small
        factor of synchronous — it does NOT monotonically degrade."""
        p = QuadraticProblem(condition_number=10.0)
        lr = 0.1 / float(p.eigenvalues().max())  # headroom for staleness
        sync = run_stale_sgd(p, lambda: 0, n_steps=6000, lr=lr, noise_std=0.0)
        stale = run_stale_sgd(p, lambda: 6, n_steps=6000, lr=lr, noise_std=0.0)
        assert not stale.diverged
        it_sync = sync.iterations_to(1e-4)
        it_stale = stale.iterations_to(1e-4)
        assert it_sync is not None and it_stale is not None
        assert 0.7 * it_sync <= it_stale <= 1.3 * it_sync

    def test_staleness_destabilizes_at_fixed_lr(self):
        """At the default lr, large staleness breaks convergence — the
        mechanism that makes BSP/SSP worth their synchronization cost."""
        p = QuadraticProblem(condition_number=10.0)
        stale = run_stale_sgd(p, lambda: 8, n_steps=3000, noise_std=0.0)
        assert stale.diverged or stale.iterations_to(0.001) is None

    def test_extreme_staleness_diverges_with_large_lr(self):
        p = QuadraticProblem(condition_number=50.0)
        res = run_stale_sgd(
            p, lambda: 100, n_steps=3000, lr=1.9 / p.eigenvalues().max(),
            noise_std=0.0,
        )
        assert res.diverged or res.losses[-1] > res.losses[0] * 0.5

    def test_noise_floor_prevents_exact_convergence(self):
        p = QuadraticProblem()
        res = run_stale_sgd(p, lambda: 0, n_steps=3000, noise_std=0.5)
        assert not res.diverged
        assert res.losses[-1] > 0

    def test_iterations_to_validates_fraction(self):
        res = run_stale_sgd(QuadraticProblem(), lambda: 0, n_steps=10)
        with pytest.raises(ConfigurationError):
            res.iterations_to(2.0)

    def test_deterministic_under_seed(self):
        p = QuadraticProblem()
        a = run_stale_sgd(p, lambda: 1, n_steps=200, seed=3)
        b = run_stale_sgd(p, lambda: 1, n_steps=200, seed=3)
        assert np.array_equal(a.losses, b.losses)

    def test_invalid_args(self):
        p = QuadraticProblem()
        with pytest.raises(ConfigurationError):
            run_stale_sgd(p, lambda: 0, n_steps=0)
        with pytest.raises(ConfigurationError):
            run_stale_sgd(p, lambda: 0, lr=0.0)
        with pytest.raises(ConfigurationError):
            run_stale_sgd(p, lambda: 0, noise_std=-1.0)


class TestEmpiricalSampler:
    def test_empty_samples_mean_synchronous(self):
        sampler = empirical_staleness_sampler([], np.random.default_rng(0))
        assert all(sampler() == 0 for _ in range(10))

    def test_draws_from_multiset(self):
        rng = np.random.default_rng(0)
        sampler = empirical_staleness_sampler([1, 1, 1, 5], rng)
        draws = [sampler() for _ in range(200)]
        assert set(draws) <= {1, 5}
        assert draws.count(1) > draws.count(5)


class TestStalenessRecording:
    def test_ps_records_staleness_under_asp(self, tiny_config):
        from dataclasses import replace

        from repro.cluster.trainer import Trainer
        from repro.workloads.presets import prophet_factory

        config = replace(
            tiny_config, sync_mode="asp", worker_compute_scale={0: 1.6},
            n_iterations=8,
        )
        trainer = Trainer(config, prophet_factory())
        trainer.run()
        samples = trainer.ps.staleness_samples
        assert samples, "ASP run recorded no staleness samples"
        assert max(samples) >= 1  # the straggler forces real staleness
        assert min(samples) >= 0

    def test_bsp_records_nothing(self, tiny_config):
        from repro.cluster.trainer import Trainer
        from repro.workloads.presets import prophet_factory

        trainer = Trainer(tiny_config, prophet_factory())
        trainer.run()
        assert trainer.ps.staleness_samples == []


class TestConvergenceExperiment:
    def test_time_to_accuracy_shape(self):
        from repro.experiments import convergence

        rows = convergence.run(n_iterations=10, sgd_steps=2000)
        by_mode = {r.sync_mode: r for r in rows}
        # Asynchrony buys throughput with a straggler present...
        assert (
            by_mode["asp"].seconds_per_iteration
            < by_mode["bsp"].seconds_per_iteration
        )
        # ...at nonzero staleness...
        assert by_mode["asp"].mean_staleness > 0
        assert by_mode["bsp"].mean_staleness == 0
        # ...and all modes still reach the target at this mild level.
        for r in rows:
            assert r.time_to_target_s is not None
