"""Unit tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.model == "resnet50"
        assert args.gbps == 3.0
        assert args.sync == "bsp"

    def test_sweep_accepts_multiple_bandwidths(self):
        args = build_parser().parse_args(["sweep", "--gbps", "1", "2.5"])
        assert args.gbps == [1.0, 2.5]

    def test_experiments_list_matches_package(self):
        import repro.experiments as ex

        for name in EXPERIMENTS:
            assert hasattr(ex, name)

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.model == "resnet18"
        assert args.crash_at == 2.0
        assert args.restart_after == 0.5
        assert args.drop == 0.02
        assert args.backend == "ps"
        assert args.workers == 3
        assert args.n_servers == 1

    def test_chaos_accepts_backend_and_tier_flags(self):
        args = build_parser().parse_args(
            [
                "chaos",
                "--backend", "allreduce",
                "--collective", "hierarchical",
                "--group-size", "3",
                "--workers", "6",
            ]
        )
        assert args.backend == "allreduce"
        assert args.collective == "hierarchical"
        assert args.group_size == 3
        assert args.workers == 6
        args = build_parser().parse_args(["chaos", "--n-servers", "2"])
        assert args.n_servers == 2

    def test_run_accepts_jobs_and_no_cache(self):
        args = build_parser().parse_args(["run", "fig8", "-j", "4", "--no-cache"])
        assert args.jobs == 4
        assert args.no_cache is True
        args = build_parser().parse_args(["run", "fig8"])
        assert args.jobs is None
        assert args.no_cache is False

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.jobs is None
        assert args.no_cache is False
        assert args.cache_dir is None

    def test_cache_defaults_to_stats(self):
        args = build_parser().parse_args(["cache"])
        assert args.action == "stats"
        args = build_parser().parse_args(["cache", "clear"])
        assert args.action == "clear"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile", "fig8"])
        assert args.experiment == "fig8"
        assert args.top == 25
        assert args.sort == "cumulative"
        assert args.dump is None
        assert args.use_cache is False

    def test_profile_accepts_sort_and_dump(self):
        args = build_parser().parse_args(
            ["profile", "fig2", "--top", "10", "--sort", "tottime",
             "--dump", "out.prof", "--use-cache"]
        )
        assert args.top == 10
        assert args.sort == "tottime"
        assert args.dump == "out.prof"
        assert args.use_cache is True


class TestErrorHandling:
    """Unknown names exit with a one-line ``error:`` message and status 2
    instead of an argparse usage dump or a traceback."""

    def _assert_one_line_error(self, capsys, kind):
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith(f"error: unknown {kind}")
        assert captured.err.count("\n") == 1
        assert "Traceback" not in captured.err

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        self._assert_one_line_error(capsys, "experiment")

    def test_unknown_model_in_info(self, capsys):
        assert main(["info", "lenet"]) == 2
        self._assert_one_line_error(capsys, "model")

    def test_unknown_strategy_in_sched(self, capsys):
        assert main(["sched", "tcp-fair"]) == 2
        self._assert_one_line_error(capsys, "strategy")

    def test_unknown_model_in_compare(self, capsys):
        assert main(["compare", "--model", "lenet"]) == 2
        self._assert_one_line_error(capsys, "model")

    def test_unknown_model_in_chaos(self, capsys):
        assert main(["chaos", "--model", "lenet"]) == 2
        self._assert_one_line_error(capsys, "model")

    def test_unknown_experiment_in_profile(self, capsys):
        assert main(["profile", "fig99"]) == 2
        self._assert_one_line_error(capsys, "experiment")

    def test_error_message_lists_alternatives(self, capsys):
        main(["sched", "tcp-fair"])
        err = capsys.readouterr().err
        assert "prophet" in err and "bytescheduler" in err


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out
        assert "prophet" in out
        assert "table2" in out

    def test_info(self, capsys):
        assert main(["info", "resnet50"]) == 0
        out = capsys.readouterr().out
        assert "25,557,032" in out
        assert "161" in out

    def test_compare_runs_tiny_sweep(self, capsys):
        code = main(
            [
                "compare",
                "--model", "resnet18",
                "--batch", "16",
                "--gbps", "4",
                "--workers", "2",
                "--iterations", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "prophet" in out
        assert "mg-wfbp" in out

    def test_sweep_prints_all_bandwidth_rows(self, capsys):
        code = main(
            [
                "sweep",
                "--model", "resnet18",
                "--batch", "16",
                "--gbps", "2", "8",
                "--workers", "2",
                "--iterations", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 4

    def test_chaos_runs_tiny_plan(self, capsys):
        code = main(
            [
                "chaos",
                "--model", "resnet18",
                "--batch", "16",
                "--iterations", "4",
                "--crash-at", "0.4",
                "--restart-after", "0.2",
                "--drop", "0.03",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "goodput retained" in out
        assert "prophet" in out and "mxnet-fifo" in out

    def test_chaos_runs_on_ring_allreduce(self, capsys):
        code = main(
            [
                "chaos",
                "--backend", "allreduce",
                "--model", "resnet18",
                "--batch", "16",
                "--workers", "2",
                "--iterations", "4",
                "--crash-at", "0.4",
                "--restart-after", "0.2",
                "--drop", "0.03",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "stall amp." in out
        assert "allreduce/ring" in out


class TestRunnerCommands:
    def test_run_rejects_bad_job_count(self, capsys):
        assert main(["run", "fig8", "-j", "0"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "jobs" in err

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        from repro.runner import ResultCache
        from tests.runner.test_cache import FP, _result

        ResultCache(tmp_path).put(FP, _result())

        assert main(["cache", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert "1" in out

        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "removed 1" in out
        assert ResultCache(tmp_path).stats().entries == 0

    def test_bench_reports_time_and_cache(self, capsys, tmp_path, monkeypatch):
        import repro.experiments.fig8 as fig8

        monkeypatch.setattr(
            fig8, "DEFAULT_WORKLOADS", (("resnet18", 16),)
        )
        code = main(["bench", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "wall time" in out
        assert "0 hits, 2 misses" in out

        # Warm rerun: everything served from the cache.
        assert main(["bench", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 hits, 0 misses" in out

    def test_bench_no_cache_skips_store(self, capsys, tmp_path, monkeypatch):
        import repro.experiments.fig8 as fig8

        monkeypatch.setattr(
            fig8, "DEFAULT_WORKLOADS", (("resnet18", 16),)
        )
        code = main(["bench", "--no-cache", "--cache-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "cache: disabled" in out
        assert not list(tmp_path.rglob("*.json"))


class TestSchedCommand:
    def test_sched_defaults(self):
        args = build_parser().parse_args(["sched", "prophet"])
        assert args.strategy == "prophet"
        assert args.trace is None
        assert args.trace_jsonl is None

    def test_sched_untraced_run(self, capsys):
        code = main(
            [
                "sched", "prophet",
                "--model", "resnet18",
                "--batch", "16",
                "--gbps", "4",
                "--workers", "2",
                "--iterations", "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "training rate" in out
        assert "mean gradient wait" in out
        assert "trace:" not in out  # no trace summary without --trace

    def test_sched_traced_run_writes_chrome_json(self, capsys, tmp_path):
        import json

        trace_path = tmp_path / "run.json"
        jsonl_path = tmp_path / "run.jsonl"
        code = main(
            [
                "sched", "prophet",
                "--model", "resnet18",
                "--batch", "16",
                "--gbps", "4",
                "--workers", "2",
                "--iterations", "6",
                "--trace", str(trace_path),
                "--trace-jsonl", str(jsonl_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        events = json.loads(trace_path.read_text())["traceEvents"]
        span_cats = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert {"compute", "assembly", "transfer"} <= span_cats
        assert jsonl_path.read_text().count("\n") == sum(
            1 for e in events if e.get("ph") != "M"
        )


class TestPsTierFlags:
    def test_defaults_leave_config_untouched(self):
        for cmd in ("compare", "sched", "sweep"):
            argv = [cmd, "prophet"] if cmd == "sched" else [cmd]
            args = build_parser().parse_args(argv)
            assert args.n_servers == 1
            assert args.ps_gbps is None

    def test_parse_n_servers_and_ps_gbps(self):
        args = build_parser().parse_args(
            ["sched", "prophet", "--n-servers", "4", "--ps-gbps", "3"]
        )
        assert args.n_servers == 4
        assert args.ps_gbps == 3.0

    def test_sched_runs_sharded(self, capsys):
        code = main(
            [
                "sched", "prophet",
                "--model", "resnet18",
                "--batch", "16",
                "--gbps", "10",
                "--workers", "2",
                "--iterations", "5",
                "--n-servers", "2",
                "--ps-gbps", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "training rate" in out

    def test_invalid_n_servers_is_clean_error(self, capsys):
        code = main(["sched", "prophet", "--n-servers", "0"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestBackendFlags:
    def test_defaults_leave_config_untouched(self):
        # --collective/--group-size default to None sentinels so the CLI
        # can tell "never mentioned" from "typed the default" when
        # rejecting PS/allreduce flag mixtures; resolution to ring/2
        # happens only once --backend allreduce is validated.
        for cmd in ("compare", "sched"):
            argv = [cmd, "prophet"] if cmd == "sched" else [cmd]
            args = build_parser().parse_args(argv)
            assert args.backend == "ps"
            assert args.collective is None
            assert args.group_size is None

    def test_parse_backend_and_collective(self):
        args = build_parser().parse_args(
            ["compare", "--backend", "allreduce",
             "--collective", "hierarchical", "--group-size", "4"]
        )
        assert args.backend == "allreduce"
        assert args.collective == "hierarchical"
        assert args.group_size == 4

    def test_compare_runs_allreduce(self, capsys):
        code = main(
            [
                "compare",
                "--model", "resnet18",
                "--batch", "16",
                "--gbps", "4",
                "--workers", "2",
                "--iterations", "5",
                "--backend", "allreduce",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ring allreduce" in out
        assert "prophet" in out and "mg-wfbp" in out

    def test_sched_runs_hierarchical(self, capsys):
        code = main(
            [
                "sched", "prophet",
                "--model", "resnet18",
                "--batch", "16",
                "--gbps", "4",
                "--workers", "4",
                "--iterations", "5",
                "--backend", "allreduce",
                "--collective", "hierarchical",
                "--group-size", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "training rate" in out
        assert "hierarchical allreduce" in out

    def test_allreduce_rejects_ps_tier_flags(self, capsys):
        code = main(
            ["compare", "--backend", "allreduce", "--n-servers", "2"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestFlagRejectionMatrix:
    """Invalid flag combinations fail fast with one-line errors, exit 2.

    Every row is a combination that the parser would otherwise accept and
    then silently ignore half of — the CLI's error contract promises an
    ``error: ...`` line on stderr instead.
    """

    @pytest.mark.parametrize(
        ("argv", "fragment"),
        [
            (["compare", "--backend", "allreduce", "--n-servers", "2"],
             "--n-servers is a parameter-server knob"),
            (["compare", "--backend", "allreduce", "--ps-gbps", "4"],
             "--ps-gbps is a parameter-server knob"),
            (["compare", "--collective", "ring"],
             "--collective requires --backend allreduce"),
            (["compare", "--collective", "hierarchical"],
             "--collective requires --backend allreduce"),
            (["compare", "--group-size", "4"],
             "--group-size requires --backend allreduce"),
            (["sched", "prophet", "--group-size", "2"],
             "--group-size requires --backend allreduce"),
            (["sched", "prophet", "--backend", "allreduce",
              "--group-size", "2"],
             "--group-size only applies to --collective hierarchical"),
            (["sched", "prophet", "--backend", "allreduce",
              "--collective", "ring", "--group-size", "2"],
             "--group-size only applies to --collective hierarchical"),
            (["chaos", "--backend", "allreduce", "--n-servers", "2"],
             "--n-servers is a parameter-server knob"),
            (["chaos", "--collective", "hierarchical"],
             "--collective requires --backend allreduce"),
        ],
        ids=[
            "allreduce-n-servers", "allreduce-ps-gbps",
            "ring-without-backend", "hierarchical-without-backend",
            "group-size-without-backend", "sched-group-size-without-backend",
            "group-size-without-hierarchical",
            "group-size-with-ring", "chaos-allreduce-n-servers",
            "chaos-collective-without-backend",
        ],
    )
    def test_rejected_with_one_line_error(self, capsys, argv, fragment):
        code = main(argv)
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert fragment in err
        assert len(err.strip().splitlines()) == 1

    @pytest.mark.parametrize(
        "argv",
        [
            ["compare", "--bogus-flag"],
            ["sched"],  # missing strategy positional
            ["fleet", "--policy", "lottery"],
            ["fleet", "--n-jobs", "many"],
        ],
        ids=["unknown-flag", "missing-positional", "bad-choice", "bad-int"],
    )
    def test_parse_failures_follow_the_same_contract(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_valid_hierarchical_combo_still_parses(self):
        args = build_parser().parse_args(
            ["compare", "--backend", "allreduce",
             "--collective", "hierarchical", "--group-size", "4"]
        )
        assert args.group_size == 4


class TestFleetCommand:
    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.n_jobs == 8
        assert args.policy == "fifo"
        assert args.strategies == ["prophet"]

    def test_fleet_runs_and_prints_summary(self, capsys):
        code = main(
            [
                "fleet", "--n-jobs", "3", "--policy", "fifo",
                "--strategies", "prophet", "mg-wfbp",
                "--iterations", "3", "--interarrival", "0.01",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet goodput" in out
        assert "Jain fairness" in out
        assert "per-strategy breakdown" in out

    def test_fleet_rejects_unknown_strategy(self, capsys):
        code = main(["fleet", "--strategies", "prophet", "warlock"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error:" in err and "warlock" in err
