"""End-to-end tracing of full training runs.

Pins the acceptance criteria: a traced run emits spans for compute, block
assembly, and every gradient transfer; exports deterministically under the
sim clock; and a run with tracing disabled records nothing at all.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.trainer import run_training
from repro.errors import ConfigurationError
from repro.metrics.timeline import recorder_from_trace
from repro.trace import NULL_RECORDER, chrome_trace_dict
from repro.workloads.presets import prophet_factory


@pytest.fixture(scope="module")
def traced_result(tiny_config):
    return run_training(replace(tiny_config, trace=True), prophet_factory())


@pytest.fixture(scope="module")
def tiny_config(request):
    # Re-expose the function-scoped conftest fixture at module scope so one
    # traced run serves every test here (importing conftest also registers
    # the tiny model).
    from tests.conftest import TINY_MODEL_NAME

    from repro.agg.policies import ExplicitGroupsPolicy
    from repro.config import TrainingConfig
    from repro.models.device import DeviceSpec
    from repro.net.tcp import TCPParams
    from repro.quantities import Gbps

    return TrainingConfig(
        model=TINY_MODEL_NAME,
        batch_size=8,
        n_workers=2,
        n_iterations=6,
        bandwidth=1 * Gbps,
        tcp=TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=0.8),
        device=DeviceSpec(name="test-gpu", peak_flops=4e12, efficiency=0.25),
        agg_policy=ExplicitGroupsPolicy(((5, 6, 7), (3, 4), (2,), (0, 1))),
        seed=7,
        jitter_std=0.01,
    )


class TestTracedRun:
    def test_compute_spans_cover_all_iterations(self, traced_result):
        compute = traced_result.trace.by_category("compute")
        kinds = {ev.name for ev in compute}
        assert "fwd" in kinds and "bwd" in kinds
        config = traced_result.config
        n_slots = config.n_workers * config.n_iterations
        # Exactly one bwd span per worker per iteration; fwd may split into
        # several busy chunks when the forward pass gates on pending pulls.
        assert sum(ev.name == "bwd" for ev in compute) == n_slots
        assert sum(ev.name == "fwd" for ev in compute) >= n_slots
        # Every GPU busy interval the recorder holds is backed by a span.
        n_intervals = sum(
            len(traced_result.recorder.gpu_busy_intervals(w))
            for w in range(config.n_workers)
        )
        assert len(compute) == n_intervals

    def test_block_assembly_spans_present(self, traced_result):
        assembly = traced_result.trace.by_category("assembly")
        assert assembly
        for ev in assembly:
            assert ev.args["strategy"] == "prophet"
            assert ev.args["nbytes"] > 0
            assert ev.args["grads"]

    def test_every_gradient_transfer_has_a_span(self, traced_result):
        transfers = traced_result.trace.by_category("transfer")
        n_link_records = sum(
            len(traced_result.topology.uplink(w).records)
            + len(traced_result.topology.downlink(w).records)
            for w in range(traced_result.config.n_workers)
        )
        assert len(transfers) == n_link_records
        total_traced = sum(ev.args["nbytes"] for ev in transfers)
        total_linked = sum(
            r.nbytes
            for w in range(traced_result.config.n_workers)
            for r in (
                list(traced_result.topology.uplink(w).records)
                + list(traced_result.topology.downlink(w).records)
            )
        )
        assert total_traced == pytest.approx(total_linked)

    def test_gpu_spans_match_recorder_intervals(self, traced_result):
        rebuilt = recorder_from_trace(traced_result.trace.events)
        for w in range(traced_result.config.n_workers):
            orig = traced_result.recorder.gpu_busy_intervals(w)
            back = rebuilt.gpu_busy_intervals(w)
            assert np.allclose(orig, back)

    def test_iteration_markers_round_trip(self, traced_result):
        rebuilt = recorder_from_trace(traced_result.trace.events)
        for w in range(traced_result.config.n_workers):
            orig = traced_result.recorder.worker_iterations(w)
            back = rebuilt.worker_iterations(w)
            assert [r.fwd_start for r in orig] == [r.fwd_start for r in back]

    def test_events_are_clock_ordered(self, traced_result):
        events = traced_result.trace.sorted_events()
        ts = [ev.ts for ev in events]
        assert ts == sorted(ts)
        assert all(ev.ts >= 0 for ev in events)

    def test_summary_and_export_agree(self, traced_result):
        summary = traced_result.trace_summary()
        doc = chrome_trace_dict(traced_result.trace)
        data_records = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert summary["n_events"] == len(data_records)

    def test_export_is_deterministic_across_runs(self, tiny_config):
        a = run_training(replace(tiny_config, trace=True), prophet_factory())
        b = run_training(replace(tiny_config, trace=True), prophet_factory())
        assert chrome_trace_dict(a.trace) == chrome_trace_dict(b.trace)


class TestDisabledTracing:
    def test_untraced_run_records_no_events(self, tiny_config):
        result = run_training(tiny_config, prophet_factory())
        assert result.trace is NULL_RECORDER
        assert len(result.trace.events) == 0

    def test_untraced_result_raises_on_trace_api(self, tiny_config):
        result = run_training(tiny_config, prophet_factory())
        with pytest.raises(ConfigurationError):
            result.trace_summary()
        with pytest.raises(ConfigurationError):
            result.write_chrome_trace("/tmp/never-written.json")

    def test_metrics_identical_with_and_without_tracing(self, tiny_config):
        plain = run_training(tiny_config, prophet_factory())
        traced = run_training(replace(tiny_config, trace=True), prophet_factory())
        assert plain.training_rate(skip=1) == pytest.approx(
            traced.training_rate(skip=1)
        )
        assert plain.end_time == pytest.approx(traced.end_time)
