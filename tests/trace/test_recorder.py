"""Unit tests for the trace recorders (live and null)."""

import pytest

from repro.errors import TracingError
from repro.trace import (
    COUNTER,
    INSTANT,
    NULL_RECORDER,
    SPAN,
    NullRecorder,
    TraceRecorder,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


class TestTraceRecorder:
    def test_complete_records_span(self):
        tr = TraceRecorder()
        tr.complete("push", "comm", 1.0, 3.5, "worker0/comm", {"nbytes": 42})
        (ev,) = tr.events
        assert ev.ph == SPAN
        assert ev.ts == 1.0
        assert ev.dur == 2.5
        assert ev.end == 3.5
        assert ev.args["nbytes"] == 42

    def test_complete_rejects_negative_duration(self):
        tr = TraceRecorder()
        with pytest.raises(TracingError):
            tr.complete("bad", "comm", 2.0, 1.0, "t")

    def test_instant_and_counter_phases(self):
        tr = TraceRecorder()
        tr.instant("ready", "gradient", 0.5, "worker0/grad")
        tr.counter("queue", "engine", 0.6, "engine", {"pending": 3})
        assert [ev.ph for ev in tr.events] == [INSTANT, COUNTER]
        assert tr.events[1].args == {"pending": 3}

    def test_span_context_manager_nests(self):
        clock = FakeClock()
        tr = TraceRecorder(clock=clock)
        with tr.span("outer", "compute", "w0/gpu"):
            clock.t = 1.0
            with tr.span("inner", "compute", "w0/gpu"):
                clock.t = 2.0
            clock.t = 4.0
        inner, outer = tr.events  # inner closes first
        assert inner.name == "inner" and outer.name == "outer"
        # The inner span lies entirely within the outer interval.
        assert outer.ts <= inner.ts
        assert inner.end <= outer.end
        assert (outer.ts, outer.end) == (0.0, 4.0)
        assert (inner.ts, inner.end) == (1.0, 2.0)

    def test_span_requires_clock(self):
        tr = TraceRecorder()
        with pytest.raises(TracingError):
            with tr.span("x", "c", "t"):
                pass

    def test_sorted_events_deterministic_order(self):
        tr = TraceRecorder()
        # Same timestamp: longer span first, then emission order.
        tr.instant("b", "cat", 1.0, "t")
        tr.complete("short", "cat", 1.0, 1.1, "t")
        tr.complete("long", "cat", 1.0, 2.0, "t")
        tr.instant("a", "cat", 0.5, "t")
        names = [ev.name for ev in tr.sorted_events()]
        assert names == ["a", "long", "short", "b"]

    def test_seq_monotonic_across_clear(self):
        tr = TraceRecorder()
        tr.instant("a", "c", 0.0, "t")
        tr.clear()
        tr.instant("b", "c", 0.0, "t")
        assert tr.events[0].seq == 1  # sequence numbers never restart

    def test_tracks_first_appearance_order(self):
        tr = TraceRecorder()
        tr.instant("a", "c", 0.0, "zeta")
        tr.instant("b", "c", 0.0, "alpha")
        tr.instant("c", "c", 0.0, "zeta")
        assert tr.tracks() == ["zeta", "alpha"]

    def test_by_category_filters(self):
        tr = TraceRecorder()
        tr.instant("a", "x", 0.0, "t")
        tr.instant("b", "y", 1.0, "t")
        assert [ev.name for ev in tr.by_category("y")] == ["b"]


class TestNullRecorder:
    def test_disabled_flag(self):
        assert NULL_RECORDER.enabled is False
        assert TraceRecorder.enabled is True

    def test_records_nothing(self):
        nr = NullRecorder()
        nr.complete("a", "c", 0.0, 1.0, "t")
        nr.instant("b", "c", 0.0, "t")
        nr.counter("c", "c", 0.0, "t", {"v": 1})
        with nr.span("d", "c", "t"):
            pass
        assert len(nr) == 0
        assert nr.events == []
        assert nr.sorted_events() == []
        assert nr.tracks() == []

    def test_span_reuses_singleton(self):
        nr = NullRecorder()
        assert nr.span("a", "c", "t") is nr.span("b", "c", "t")

    def test_no_instance_dict(self):
        # __slots__ keeps the null recorder allocation-free per attribute.
        with pytest.raises(AttributeError):
            NULL_RECORDER.extra = 1
