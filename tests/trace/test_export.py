"""Chrome trace-event export: schema, round-trip, JSONL, summaries."""

import json

import pytest

from repro.errors import TracingError
from repro.trace import (
    TraceRecorder,
    chrome_trace_dict,
    read_chrome_trace,
    summarize_trace,
    write_chrome_trace,
    write_trace_jsonl,
)


@pytest.fixture
def recorder():
    tr = TraceRecorder()
    tr.complete("bwd l3", "compute", 0.0, 0.4, "worker0/gpu", {"iteration": 0})
    tr.complete("push i0", "comm", 0.1, 0.9, "worker0/comm", {"nbytes": 1024})
    tr.instant("release g0", "ps", 0.9, "ps")
    tr.counter("link.utilization", "net", 1.0, "net/up0", {"busy_fraction": 0.5})
    return tr


class TestChromeSchema:
    def test_top_level_shape(self, recorder):
        doc = chrome_trace_dict(recorder, metadata={"model": "resnet18"})
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"] == {"model": "resnet18"}

    def test_events_use_microseconds(self, recorder):
        doc = chrome_trace_dict(recorder)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        assert by_name["bwd l3"]["ts"] == 0.0
        assert by_name["bwd l3"]["dur"] == pytest.approx(0.4e6)
        assert by_name["push i0"]["ts"] == pytest.approx(0.1e6)

    def test_track_metadata_records(self, recorder):
        doc = chrome_trace_dict(recorder)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        proc_names = {
            e["args"]["name"] for e in meta if e["name"] == "process_name"
        }
        thread_names = {
            e["args"]["name"] for e in meta if e["name"] == "thread_name"
        }
        assert proc_names == {"worker0", "ps", "net"}
        assert {"gpu", "comm", "up0", "ps"} <= thread_names

    def test_pid_tid_assignment_stable(self, recorder):
        a = chrome_trace_dict(recorder)
        b = chrome_trace_dict(recorder)
        assert a == b  # byte-identical across exports

    def test_every_data_record_addresses_known_row(self, recorder):
        doc = chrome_trace_dict(recorder)
        rows = {
            (e["pid"], e["tid"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for e in doc["traceEvents"]:
            if e["ph"] in ("X", "i", "C"):
                assert (e["pid"], e["tid"]) in rows

    def test_instants_are_thread_scoped(self, recorder):
        doc = chrome_trace_dict(recorder)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants and all(e["s"] == "t" for e in instants)


class TestRoundTrip:
    def test_file_round_trip(self, recorder, tmp_path):
        path = write_chrome_trace(recorder, tmp_path / "t.json")
        loaded = read_chrome_trace(path)
        original = recorder.sorted_events()
        assert len(loaded) == len(original)
        for orig, back in zip(original, loaded):
            assert back.name == orig.name
            assert back.cat == orig.cat
            assert back.ph == orig.ph
            assert back.track == orig.track
            assert back.ts == pytest.approx(orig.ts, abs=1e-9)
            assert back.dur == pytest.approx(orig.dur, abs=1e-9)
            assert dict(back.args) == dict(orig.args)

    def test_loadable_as_plain_json(self, recorder, tmp_path):
        path = write_chrome_trace(recorder, tmp_path / "t.json")
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)

    def test_foreign_phase_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [
            {"name": "b", "ph": "B", "ts": 0, "pid": 1, "tid": 1},
        ]}))
        with pytest.raises(TracingError):
            read_chrome_trace(path)

    def test_jsonl_one_compact_object_per_event(self, recorder, tmp_path):
        path = write_trace_jsonl(recorder, tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(recorder.events)
        first = json.loads(lines[0])
        assert set(first) == {"name", "cat", "ph", "ts", "dur", "track", "seq", "args"}
        assert ": " not in lines[0]  # compact separators


class TestSummarize:
    def test_aggregates(self, recorder):
        s = summarize_trace(recorder)
        assert s["n_events"] == 4
        assert s["spans"]["compute"] == {"count": 1, "total_s": pytest.approx(0.4)}
        assert s["spans"]["comm"]["total_s"] == pytest.approx(0.8)
        assert s["instants"] == {"ps": 1}
        assert s["counters"]["link.utilization"]["last"] == {"busy_fraction": 0.5}
        assert s["tracks"] == ["net/up0", "ps", "worker0/comm", "worker0/gpu"]

    def test_time_span_uses_max_end(self):
        tr = TraceRecorder()
        tr.complete("long", "c", 0.0, 5.0, "t")
        tr.instant("late-start", "c", 1.0, "t")
        assert summarize_trace(tr)["time_span_s"] == pytest.approx(5.0)

    def test_empty_trace(self):
        s = summarize_trace(TraceRecorder())
        assert s["n_events"] == 0
        assert s["time_span_s"] == 0.0

    def test_accepts_plain_event_list(self, recorder):
        assert summarize_trace(list(recorder.events))["n_events"] == 4
