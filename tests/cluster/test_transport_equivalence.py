"""The scheduler/transport seam must be behaviour-free on the PS path.

After the topology/scheduler split, every PS push flows through a
:class:`~repro.net.transport.Transport` instead of calling the uplink
directly.  These tests pin the refactor's contract: routing the same
traffic through an *instrumented* pass-through transport produces a
bit-identical run — same iteration timeline, same per-link transfer
records — for every scheduling strategy, on both the single-PS star and
the sharded tier.  Any future transport-layer change that breaks PS
equivalence fails here before it can shift the committed baselines.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
import pytest

from repro.cluster import sharded, worker
from repro.cluster.trainer import run_training
from repro.faults.plan import FaultPlan
from repro.net.transport import LinkTransport
from repro.workloads.presets import EXTENDED_FACTORIES

STRATEGIES = tuple(EXTENDED_FACTORIES)

#: One variant per communication topology: the single-PS star, the
#: key-sharded tier, and both allreduce collectives.
BACKEND_VARIANTS = ("star", "sharded", "ring", "hierarchical")


def _variant_config(tiny_config, variant, seed, jitter):
    base = replace(tiny_config, seed=seed, jitter_std=jitter, n_iterations=4)
    if variant == "star":
        return base
    if variant == "sharded":
        return replace(base, n_servers=2)
    if variant == "ring":
        return replace(base, backend="allreduce", collective="ring")
    return replace(
        base,
        n_workers=4,
        backend="allreduce",
        collective="hierarchical",
        collective_group_size=2,
    )


class CountingTransport(LinkTransport):
    """Pass-through wrapper that only counts what crosses the seam."""

    sent_units = 0
    sent_bytes = 0.0

    def send_unit(self, nbytes, tag=None, on_complete=None, extra_time=0.0):
        CountingTransport.sent_units += 1
        CountingTransport.sent_bytes += float(nbytes)
        return super().send_unit(
            nbytes, tag=tag, on_complete=on_complete, extra_time=extra_time
        )


@pytest.fixture
def counting_transport(monkeypatch):
    """Route every PS worker/shard-port push through the wrapper."""
    CountingTransport.sent_units = 0
    CountingTransport.sent_bytes = 0.0
    monkeypatch.setattr(worker, "LinkTransport", CountingTransport)
    monkeypatch.setattr(sharded, "LinkTransport", CountingTransport)
    return CountingTransport


def _timeline(result, n_workers):
    return [
        [r.fwd_start for r in result.recorder.worker_iterations(w)]
        for w in range(n_workers)
    ]


def _link_records(result, config):
    records = []
    for w in range(config.n_workers):
        for link in result.topology.worker_uplinks(w):
            records.append([(r.start, r.end, r.nbytes, r.tag) for r in link.records])
    return records


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_pass_through_transport_is_bit_identical(
    tiny_config, strategy, counting_transport
):
    factory = EXTENDED_FACTORIES[strategy]
    wrapped = run_training(tiny_config, factory)
    assert counting_transport.sent_units > 0

    # The reference run also executes under the patch; the wrapper is a
    # pure pass-through, so both runs must match the unpatched baseline —
    # which the property test below establishes against a clean module.
    reference = run_training(tiny_config, factory)

    assert _timeline(wrapped, tiny_config.n_workers) == _timeline(
        reference, tiny_config.n_workers
    )
    assert _link_records(wrapped, tiny_config) == _link_records(
        reference, tiny_config
    )
    assert wrapped.end_time == reference.end_time


@pytest.mark.parametrize("strategy", ("prophet", "bytescheduler"))
def test_pass_through_transport_sharded(tiny_config, strategy, counting_transport):
    config = replace(tiny_config, n_servers=2)
    factory = EXTENDED_FACTORIES[strategy]
    wrapped = run_training(config, factory)
    assert counting_transport.sent_units > 0
    reference = run_training(config, factory)
    assert _timeline(wrapped, config.n_workers) == _timeline(
        reference, config.n_workers
    )
    assert wrapped.end_time == reference.end_time


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(0, 2**16),
    jitter=st.sampled_from([0.0, 0.01, 0.05]),
    strategy=st.sampled_from(STRATEGIES),
)
def test_transport_transparency_property(tiny_config, seed, jitter, strategy):
    """Property form: under random seeds/jitter, injecting the wrapper
    never changes a single iteration start time."""
    config = replace(tiny_config, seed=seed, jitter_std=jitter, n_iterations=4)
    factory = EXTENDED_FACTORIES[strategy]
    reference = run_training(config, factory)

    originals = (worker.LinkTransport, sharded.LinkTransport)
    CountingTransport.sent_units = 0
    worker.LinkTransport = CountingTransport
    sharded.LinkTransport = CountingTransport
    try:
        wrapped = run_training(config, factory)
    finally:
        worker.LinkTransport, sharded.LinkTransport = originals

    assert CountingTransport.sent_units > 0
    assert _timeline(wrapped, config.n_workers) == _timeline(
        reference, config.n_workers
    )
    assert wrapped.end_time == reference.end_time


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(0, 2**16),
    variant=st.sampled_from(BACKEND_VARIANTS),
    strategy=st.sampled_from(("prophet", "mxnet-fifo")),
)
def test_empty_fault_plan_is_transparent_on_every_backend(
    tiny_config, seed, variant, strategy
):
    """The fault layer's inertness contract, as a property: wiring an
    *empty* FaultPlan through any of the three backends (star PS, sharded
    tier, ring/hierarchical collective) is bit-identical to no plan at
    all — same per-worker iteration timeline, same end time, and no
    injector is ever built."""
    config = _variant_config(tiny_config, variant, seed, jitter=0.01)
    factory = EXTENDED_FACTORIES[strategy]
    reference = run_training(config, factory)
    empty = run_training(replace(config, faults=FaultPlan()), factory)

    assert reference.fault_stats is None and empty.fault_stats is None
    assert _timeline(empty, config.n_workers) == _timeline(
        reference, config.n_workers
    )
    assert empty.end_time == reference.end_time
