"""End-to-end training over the allreduce collective backend.

The bar mirrors the sharded-tier tests: every scheduling strategy must
drive the collective backend *unchanged* (the topology/scheduler split),
runs must be deterministic under the seed, the degenerate one-worker ring
must be communication-free, and the config surface must reject the PS
knobs that have no collective meaning.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.trainer import run_training
from repro.errors import ConfigurationError
from repro.workloads.presets import EXTENDED_FACTORIES

STRATEGIES = tuple(EXTENDED_FACTORIES)


@pytest.fixture
def ring_config(tiny_config):
    return replace(tiny_config, backend="allreduce", collective="ring")


# ----------------------------------------------------------------------
# Every scheduler drives the collective backend unchanged
# ----------------------------------------------------------------------

@pytest.mark.parametrize("strategy", STRATEGIES)
def test_all_strategies_run_on_ring(ring_config, strategy):
    result = run_training(ring_config, EXTENDED_FACTORIES[strategy])
    assert result.training_rate(skip=1) > 0
    # All model bytes flowed as ring steps: each link carries
    # 2(N-1)/N · S per allreduced byte, and nothing else.
    n = ring_config.n_workers
    factor = 2.0 * (n - 1) / n
    model_bytes = float(result.gen_schedule.sizes.sum())
    per_iter = factor * model_bytes
    for link in result.topology.links:
        total = sum(r.nbytes for r in link.records)
        assert total == pytest.approx(per_iter * ring_config.n_iterations)


@pytest.mark.parametrize("strategy", ("prophet", "mxnet-fifo"))
def test_all_strategies_run_hierarchical(tiny_config, strategy):
    config = replace(
        tiny_config,
        n_workers=4,
        backend="allreduce",
        collective="hierarchical",
        collective_group_size=2,
    )
    result = run_training(config, EXTENDED_FACTORIES[strategy])
    assert result.training_rate(skip=1) > 0
    # Both levels saw traffic.
    assert all(link.records for link in result.topology.local_links)
    assert all(link.records for link in result.topology.global_links)


def test_collective_runs_are_deterministic(ring_config):
    factory = EXTENDED_FACTORIES["prophet"]
    a = run_training(ring_config, factory)
    b = run_training(ring_config, factory)
    for w in range(ring_config.n_workers):
        t_a = [r.fwd_start for r in a.recorder.worker_iterations(w)]
        t_b = [r.fwd_start for r in b.recorder.worker_iterations(w)]
        assert t_a == t_b
    assert a.end_time == b.end_time


def test_workers_stay_in_lockstep(ring_config):
    """Allreduce is inherently BSP: iteration starts are negotiated, so
    every worker begins iteration k at the same simulated time (up to the
    per-worker compute jitter that staggers *ends*, not starts of the
    barrier — the slowest worker gates everyone)."""
    result = run_training(ring_config, EXTENDED_FACTORIES["mxnet-fifo"])
    iters = [
        result.recorder.worker_iterations(w)
        for w in range(ring_config.n_workers)
    ]
    counts = {len(recs) for recs in iters}
    assert counts == {ring_config.n_iterations}


# ----------------------------------------------------------------------
# Ring of one == no-op
# ----------------------------------------------------------------------

def test_ring_size_one_is_communication_free(tiny_config):
    config = replace(
        tiny_config, n_workers=1, jitter_std=0.0,
        backend="allreduce", collective="ring",
    )
    spans_by_strategy = {}
    for strategy in STRATEGIES:
        result = run_training(config, EXTENDED_FACTORIES[strategy])
        # No bytes moved: the one-worker allreduce is the identity.
        assert all(link.records == [] for link in result.topology.links)
        spans = result.iteration_spans(0, skip=1)
        # Iterations are pure compute (+ the generation schedule's fixed
        # assembly tail) — no transfer or handshake time anywhere.
        compute = result.compute.fwd_times.sum() + result.compute.bwd_times.sum()
        assert np.all(spans >= compute)
        assert np.all(spans <= compute * 1.002)
        spans_by_strategy[strategy] = spans.tolist()
    # With communication free, the scheduler cannot matter: every
    # strategy produces the identical timeline.
    reference = spans_by_strategy["mxnet-fifo"]
    for strategy, spans in spans_by_strategy.items():
        assert spans == reference, strategy


# ----------------------------------------------------------------------
# Config surface
# ----------------------------------------------------------------------

def test_backend_validation_rejects_ps_knobs(tiny_config):
    with pytest.raises(ConfigurationError):
        replace(tiny_config, backend="allreduce", n_servers=2)
    with pytest.raises(ConfigurationError):
        replace(tiny_config, backend="allreduce", duplex=True)
    with pytest.raises(ConfigurationError):
        replace(tiny_config, backend="allreduce", ps_bandwidth=1e9)
    with pytest.raises(ConfigurationError):
        replace(tiny_config, backend="allreduce", sync_mode="asp")
    with pytest.raises(ConfigurationError):
        replace(tiny_config, backend="nccl")
    with pytest.raises(ConfigurationError):
        replace(tiny_config, backend="allreduce", collective="tree")


def test_hierarchical_group_size_must_divide_workers(tiny_config):
    with pytest.raises(ConfigurationError):
        replace(
            tiny_config,
            n_workers=4,
            backend="allreduce",
            collective="hierarchical",
            collective_group_size=3,
        )
