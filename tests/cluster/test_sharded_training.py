"""Integration tests for training over the sharded PS tier.

The hard bar: routing an ``n_servers=1`` workload through the sharded
machinery (``force_sharded=True``) must reproduce the single-PS results
*exactly* — same event sequence, same iteration timings — for every
scheduling strategy.  Beyond that, multi-shard runs must complete under
every sync mode, honor P3-style slicing, and label per-shard trace rows.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.trainer import run_training
from repro.errors import ConfigurationError
from repro.quantities import Gbps
from repro.workloads.presets import EXTENDED_FACTORIES, paper_config

STRATEGIES = ("prophet", "mxnet-fifo", "p3", "bytescheduler")


# ----------------------------------------------------------------------
# Equivalence: one shard == the single-PS star
# ----------------------------------------------------------------------

@pytest.mark.parametrize("strategy", STRATEGIES)
def test_single_shard_bit_identical_to_star(tiny_config, strategy):
    factory = EXTENDED_FACTORIES[strategy]
    single = run_training(tiny_config, factory)
    sharded = run_training(tiny_config, factory, force_sharded=True)
    # Bit-identical, not approximately equal: same iteration start times
    # on every worker.
    for w in range(tiny_config.n_workers):
        t_single = [r.fwd_start for r in single.recorder.worker_iterations(w)]
        t_sharded = [r.fwd_start for r in sharded.recorder.worker_iterations(w)]
        assert t_single == t_sharded
    assert single.end_time == sharded.end_time


@pytest.mark.parametrize("workload", [("resnet18", 32)])
def test_single_shard_matches_fig8_scalars(workload):
    """The committed fig8 baselines are produced by the single-PS path;
    the one-shard sharded build must reproduce them bit-exactly."""
    model, batch = workload
    config = paper_config(
        model, batch, bandwidth=3 * Gbps, n_iterations=6, record_gradients=False
    )
    for strategy in ("prophet", "bytescheduler"):
        factory = EXTENDED_FACTORIES[strategy]
        rate_single = run_training(config, factory).training_rate()
        rate_sharded = run_training(config, factory, force_sharded=True).training_rate()
        assert rate_single == rate_sharded


# ----------------------------------------------------------------------
# Multi-shard runs
# ----------------------------------------------------------------------

@pytest.mark.parametrize("sync_mode", ["bsp", "asp", "ssp"])
def test_multi_shard_completes_under_all_sync_modes(tiny_config, sync_mode):
    config = replace(tiny_config, n_servers=3, sync_mode=sync_mode)
    result = run_training(config, EXTENDED_FACTORIES["prophet"])
    for w in range(config.n_workers):
        assert len(result.recorder.worker_iterations(w)) == config.n_iterations
    assert result.training_rate() > 0


def test_multi_shard_gradient_records_complete(tiny_config):
    """Every gradient's push/pull marks fire exactly once per iteration
    even though its bytes cross several shard links."""
    config = replace(tiny_config, n_servers=3)
    result = run_training(config, EXTENDED_FACTORIES["prophet"])
    recs = [
        r for r in result.gradient_records(worker=0)
        if r.iteration >= 2
    ]
    n_grads = len(result.gen_schedule.sizes)
    assert len(recs) == n_grads * (config.n_iterations - 2)
    for r in recs:
        assert np.isfinite(r.ready)
        assert np.isfinite(r.push_start) and np.isfinite(r.push_end)
        assert r.push_start >= r.ready
        assert r.push_end > r.push_start


def test_multi_shard_duplex(tiny_config):
    config = replace(tiny_config, n_servers=2, duplex=True)
    result = run_training(config, EXTENDED_FACTORIES["prophet"])
    assert result.training_rate() > 0
    # pull traffic rides the per-shard downlinks
    down_bytes = sum(
        r.nbytes
        for link in result.topology.worker_downlinks(0)
        for r in link.records
    )
    assert down_bytes > 0


def test_slicing_spreads_large_tensors(tiny_config):
    config = replace(tiny_config, n_servers=2, shard_slice_bytes=1e6)
    result = run_training(config, EXTENDED_FACTORIES["prophet"])
    assert result.training_rate() > 0
    # the 8 MB tensor must land on both shards
    from repro.cluster.sharding import assign_shards

    assignment = assign_shards(
        result.gen_schedule.sizes, 2, config.shard_slice_bytes
    )
    big = int(np.argmax(result.gen_schedule.sizes))
    shards = {p.shard for p in assignment.pieces_of(big)}
    assert shards == {0, 1}


def test_sharding_relieves_ps_bottleneck(tiny_config):
    """Under a PS-side NIC cap, widening the tier speeds up iterations."""
    times = []
    for k in (1, 2):
        config = replace(
            tiny_config,
            bandwidth=4 * Gbps,
            ps_bandwidth=1 * Gbps,
            n_servers=k,
            n_iterations=8,
        )
        result = run_training(config, EXTENDED_FACTORIES["prophet"])
        times.append(float(result.iteration_spans(0).mean()))
    assert times[1] < times[0]


def test_per_shard_trace_tracks(tiny_config):
    config = replace(tiny_config, n_servers=2, trace=True)
    result = run_training(config, EXTENDED_FACTORIES["prophet"])
    tracks = {e.track for e in result.trace.events}
    assert "ps0" in tracks and "ps1" in tracks
    # per-shard worker comm rows
    assert any(t.startswith("worker0/s0") for t in tracks)
    assert any(t.startswith("worker0/s1") for t in tracks)


def test_sharded_monitors_one_per_worker_shard(tiny_config):
    from repro.cluster.trainer import Trainer

    config = replace(tiny_config, n_servers=3)
    trainer = Trainer(config, EXTENDED_FACTORIES["prophet"])
    assert len(trainer.monitors) == config.n_workers * 3
    assert len(trainer.servers) == 3
    assert len(trainer.schedulers) == config.n_workers * 3


# ----------------------------------------------------------------------
# Rejections
# ----------------------------------------------------------------------

def test_faults_with_sharded_tier_accepted(tiny_config):
    # The old blanket rejection is gone: drops on a sharded tier run.
    from repro.faults.plan import FaultPlan, MessageDrops

    plan = FaultPlan(drops=[MessageDrops(push=0.1)])
    config = replace(tiny_config, n_servers=2, faults=plan)
    result = run_training(config, EXTENDED_FACTORIES["prophet"])
    assert result.fault_stats is not None


def test_server_crash_beyond_tier_rejected(tiny_config):
    from repro.faults.plan import FaultPlan, ServerCrash

    plan = FaultPlan(server_crashes=[ServerCrash(server=2, at=1.0, failover_after=0.2)])
    with pytest.raises(ConfigurationError, match="server 2"):
        replace(tiny_config, n_servers=2, faults=plan)


def test_more_servers_than_keys_rejected(tiny_config):
    # the tiny model has 8 gradient tensors
    config = replace(tiny_config, n_servers=9)
    with pytest.raises(ConfigurationError, match="exceeds"):
        run_training(config, EXTENDED_FACTORIES["prophet"])


def test_invalid_n_servers_rejected(tiny_config):
    with pytest.raises(ConfigurationError):
        replace(tiny_config, n_servers=0)
    with pytest.raises(ConfigurationError):
        replace(tiny_config, shard_slice_bytes=-1.0)
