"""Unit tests for the key→shard assignment and schedule restriction."""

import numpy as np
import pytest

from repro.cluster.sharding import (
    assign_shards,
    failover_assignment,
    restrict_generation_schedule,
    restrict_profile,
)
from repro.errors import ConfigurationError

SIZES = [2e6, 8e3, 6e6, 3e6, 64e3, 8e6, 4e3, 4e3]  # the tiny model's tensors


class TestAssignShards:
    def test_deterministic_across_calls(self):
        a = assign_shards(SIZES, 3)
        b = assign_shards(SIZES, 3)
        assert a == b
        c = assign_shards(SIZES, 3, slice_bytes=1e6)
        d = assign_shards(SIZES, 3, slice_bytes=1e6)
        assert c == d

    def test_every_byte_mapped_exactly_once(self):
        assignment = assign_shards(SIZES, 3)
        seen = {}
        for piece in assignment.pieces:
            seen.setdefault(piece.grad, 0.0)
            seen[piece.grad] += piece.nbytes
        assert set(seen) == set(range(len(SIZES)))
        for grad, total in seen.items():
            assert total == pytest.approx(SIZES[grad])

    def test_slicing_covers_tensor_contiguously(self):
        assignment = assign_shards(SIZES, 2, slice_bytes=2.5e6)
        for grad, size in enumerate(SIZES):
            pieces = sorted(assignment.pieces_of(grad), key=lambda p: p.part)
            # contiguous: each piece starts where the previous ended
            cursor = 0.0
            for piece in pieces:
                assert piece.offset == pytest.approx(cursor)
                cursor += piece.nbytes
            assert cursor == pytest.approx(size)
            if size > 2.5e6:
                assert len(pieces) > 1
                assert all(p.nbytes <= 2.5e6 + 1e-6 for p in pieces)
            else:
                assert len(pieces) == 1

    def test_lpt_balance_invariant(self):
        """Greedy LPT: load spread never exceeds the largest piece."""
        for k in (2, 3, 4):
            assignment = assign_shards(SIZES, k)
            largest = max(p.nbytes for p in assignment.pieces)
            assert max(assignment.loads) - min(assignment.loads) <= largest + 1e-6

    def test_slicing_tightens_balance(self):
        whole = assign_shards(SIZES, 4)
        sliced = assign_shards(SIZES, 4, slice_bytes=1e6)
        spread_whole = max(whole.loads) - min(whole.loads)
        spread_sliced = max(sliced.loads) - min(sliced.loads)
        assert spread_sliced <= spread_whole

    def test_local_indices_dense_and_priority_ordered(self):
        assignment = assign_shards(SIZES, 3, slice_bytes=1e6)
        for shard_pieces in assignment.by_shard:
            assert [p.local for p in shard_pieces] == list(range(len(shard_pieces)))
            keys = [(p.grad, p.part) for p in shard_pieces]
            assert keys == sorted(keys)

    def test_single_shard_owns_everything(self):
        assignment = assign_shards(SIZES, 1)
        assert all(p.shard == 0 for p in assignment.pieces)
        assert assignment.loads == (pytest.approx(sum(SIZES)),)

    def test_more_servers_than_pieces_raises(self):
        with pytest.raises(ConfigurationError, match="exceeds"):
            assign_shards([1e6, 2e6], 3)
        # ...unless slicing makes enough pieces
        assignment = assign_shards([1e6, 2e6], 3, slice_bytes=0.5e6)
        assert all(len(b) >= 1 for b in assignment.by_shard)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            assign_shards([], 1)
        with pytest.raises(ConfigurationError):
            assign_shards([1.0, 0.0], 1)
        with pytest.raises(ConfigurationError):
            assign_shards([1.0], 0)
        with pytest.raises(ConfigurationError):
            assign_shards([1.0], 1, slice_bytes=0.0)


class TestRestriction:
    @pytest.fixture
    def gen_schedule(self, tiny_model, tiny_device):
        from repro.agg.kvstore import KVStore
        from repro.agg.policies import ExplicitGroupsPolicy
        from repro.models.compute import build_compute_profile

        profile = build_compute_profile(tiny_model, tiny_device, batch_size=8)
        policy = ExplicitGroupsPolicy(((5, 6, 7), (3, 4), (2,), (0, 1)))
        return KVStore(policy=policy).generation_schedule(profile)

    def test_restricted_schedule_partitions_bytes(self, gen_schedule):
        assignment = assign_shards(gen_schedule.sizes, 3)
        shards = [
            restrict_generation_schedule(gen_schedule, assignment, s)
            for s in range(3)
        ]
        assert sum(float(t.sizes.sum()) for t in shards) == pytest.approx(
            float(gen_schedule.sizes.sum())
        )

    def test_pieces_inherit_parent_generation_times(self, gen_schedule):
        assignment = assign_shards(gen_schedule.sizes, 2, slice_bytes=1e6)
        for s in range(2):
            local = restrict_generation_schedule(gen_schedule, assignment, s)
            for piece in assignment.by_shard[s]:
                assert local.c[piece.local] == gen_schedule.c[piece.grad]
                assert local.raw[piece.local] == gen_schedule.raw[piece.grad]
                assert local.sizes[piece.local] == pytest.approx(piece.nbytes)
            assert local.backward_time == gen_schedule.backward_time

    def test_restricted_buckets_keep_flush_order(self, gen_schedule):
        assignment = assign_shards(gen_schedule.sizes, 2)
        for s in range(2):
            local = restrict_generation_schedule(gen_schedule, assignment, s)
            # every local index appears in exactly one bucket, and
            # bucket_of is consistent
            flat = [i for bucket in local.buckets for i in bucket]
            assert sorted(flat) == list(range(len(local.sizes)))
            for b, bucket in enumerate(local.buckets):
                assert all(local.bucket_of[i] == b for i in bucket)
            assert all(len(b) > 0 for b in local.buckets)

    def test_restrict_profile_matches_assignment(self, gen_schedule):
        from repro.core.profiler import JobProfile

        profile = JobProfile.from_generation_schedule(gen_schedule)
        assignment = assign_shards(gen_schedule.sizes, 3)
        total = 0.0
        for s in range(3):
            local = restrict_profile(profile, assignment, s)
            assert len(local.c) == len(assignment.by_shard[s])
            # backward order kept: lower local index (front layer) is
            # generated later, never earlier, than higher indices
            assert np.all(np.diff(local.c) <= 0)
            total += float(local.sizes.sum())
        assert total == pytest.approx(float(profile.sizes.sum()))


class TestFailoverAssignment:
    def test_surviving_keys_never_move(self):
        before = assign_shards(SIZES, 3)
        after = failover_assignment(before, dead=1)
        shard_before = {(p.grad, p.part): p.shard for p in before.pieces}
        for piece in after.pieces:
            if shard_before[(piece.grad, piece.part)] != 1:
                assert piece.shard == shard_before[(piece.grad, piece.part)]
            else:
                assert piece.shard != 1  # every orphan was re-homed

    def test_dead_shard_is_empty_and_bytes_conserved(self):
        before = assign_shards(SIZES, 3, slice_bytes=2.5e6)
        after = failover_assignment(before, dead=0)
        assert after.by_shard[0] == ()
        assert after.loads[0] == 0.0
        assert sum(after.loads) == pytest.approx(sum(before.loads))
        # local indices stay dense and (grad, part)-ordered per shard
        for bucket in after.by_shard:
            assert [p.local for p in bucket] == list(range(len(bucket)))
            assert [(p.grad, p.part) for p in bucket] == sorted(
                (p.grad, p.part) for p in bucket
            )

    def test_lpt_bound_holds_over_survivors(self):
        """Classic LPT guarantee, seeded with the survivors' loads: the
        spread between heaviest and lightest survivor never exceeds the
        largest orphaned piece."""
        before = assign_shards(SIZES, 4)
        orphan_max = max(p.nbytes for p in before.pieces if p.shard == 2)
        after = failover_assignment(before, dead=2)
        survivor_loads = [
            load for shard, load in enumerate(after.loads) if shard != 2
        ]
        assert max(survivor_loads) - min(survivor_loads) <= orphan_max + 1e-9

    def test_deterministic_and_pure(self):
        before = assign_shards(SIZES, 3)
        assert failover_assignment(before, dead=2) == failover_assignment(
            before, dead=2
        )
        # the input assignment is untouched
        assert before == assign_shards(SIZES, 3)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            failover_assignment(assign_shards(SIZES, 3), dead=3)
        with pytest.raises(ConfigurationError):
            failover_assignment(assign_shards(SIZES, 1), dead=0)
