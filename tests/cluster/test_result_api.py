"""Unit tests for the TrainingResult read API."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.trainer import run_training
from repro.errors import ConfigurationError
from repro.workloads.presets import prophet_factory


@pytest.fixture(scope="module")
def result(request):
    tiny = request.getfixturevalue("tiny_config_module")
    return run_training(tiny, prophet_factory())


@pytest.fixture(scope="module")
def tiny_config_module():
    from tests.conftest import TINY_MODEL_NAME
    from repro.agg.policies import ExplicitGroupsPolicy
    from repro.config import TrainingConfig
    from repro.models.device import DeviceSpec
    from repro.net.tcp import TCPParams
    from repro.quantities import Gbps

    return TrainingConfig(
        model=TINY_MODEL_NAME,
        batch_size=8,
        n_workers=2,
        n_iterations=6,
        bandwidth=1 * Gbps,
        tcp=TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=0.8),
        device=DeviceSpec(name="test-gpu", peak_flops=4e12, efficiency=0.25),
        agg_policy=ExplicitGroupsPolicy(((5, 6, 7), (3, 4), (2,), (0, 1))),
        seed=7,
        jitter_std=0.01,
    )


class TestIterationTiming:
    def test_spans_count(self, result):
        assert len(result.iteration_spans(0, skip=0)) == 5
        assert len(result.iteration_spans(0, skip=2)) == 3

    def test_spans_positive(self, result):
        assert np.all(result.iteration_spans(0, skip=0) > 0)

    def test_excessive_skip_raises(self, result):
        with pytest.raises(ConfigurationError):
            result.iteration_spans(0, skip=10)

    def test_per_worker_rate_consistent_with_spans(self, result):
        spans = result.iteration_spans(1, skip=1)
        assert result.per_worker_rate(1, skip=1) == pytest.approx(
            8 / spans.mean()
        )

    def test_training_rate_is_mean_over_workers(self, result):
        rates = [result.per_worker_rate(w, skip=1) for w in range(2)]
        assert result.training_rate(skip=1) == pytest.approx(np.mean(rates))

    def test_measurement_window_ordered(self, result):
        start, end = result.measurement_window(0, skip=1)
        assert 0 < start < end


class TestUtilizationAndThroughput:
    def test_mean_gpu_utilization_in_unit_interval(self, result):
        util = result.mean_gpu_utilization(0, skip=1)
        assert 0 < util <= 1

    def test_series_lengths_match(self, result):
        times, util = result.gpu_utilization_series(0, window=0.1, resolution=0.05)
        assert len(times) == len(util)
        assert np.all((util >= 0) & (util <= 1))

    def test_throughput_direction_filter(self, result):
        push = result.mean_throughput(0, skip=1, direction="push")
        pull = result.mean_throughput(0, skip=1, direction="pull")
        both = result.mean_throughput(0, skip=1, direction="both")
        assert both == pytest.approx(push + pull, rel=1e-6)
        # Symmetric traffic: push and pull volumes are equal.
        assert push == pytest.approx(pull, rel=0.2)

    def test_unknown_direction_raises(self, result):
        with pytest.raises(ConfigurationError):
            result.mean_throughput(0, direction="sideways")


class TestGradientStats:
    def test_comm_stats_fields(self, result):
        stats = result.gradient_comm_stats(0, skip=1)
        assert stats.count > 0
        assert stats.mean_wait >= 0
        assert stats.mean_transfer > 0
        assert stats.p95_wait >= stats.mean_wait * 0.1
        assert stats.p95_transfer >= stats.mean_transfer

    def test_comm_stats_without_records_raises(self, tiny_config_module):
        config = replace(tiny_config_module, record_gradients=False)
        res = run_training(config, prophet_factory())
        with pytest.raises(ConfigurationError):
            res.gradient_comm_stats(0)
