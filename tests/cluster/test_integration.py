"""Integration tests: full training runs and their invariants.

Every strategy must satisfy the conservation laws of the dataflow: all
gradient bytes pushed exactly once per iteration per worker, every
parameter updated before its layer's next forward pass, BSP ordering
respected, and per-gradient records consistent (ready ≤ push start ≤
push end ≤ pull end).
"""

import numpy as np
import pytest

from repro.cluster.trainer import Trainer, run_training
from repro.quantities import Gbps, Mbps
from repro.workloads.presets import (
    STRATEGY_FACTORIES,
    bytescheduler_factory,
    fifo_factory,
    p3_factory,
    prophet_factory,
)

ALL_FACTORIES = list(STRATEGY_FACTORIES.items())


@pytest.mark.parametrize("name,factory", ALL_FACTORIES)
def test_training_completes_for_every_strategy(tiny_config, name, factory):
    result = run_training(tiny_config, factory)
    recs = result.recorder.worker_iterations(0)
    assert len(recs) == tiny_config.n_iterations
    assert result.training_rate(skip=1) > 0


@pytest.mark.parametrize("name,factory", ALL_FACTORIES)
def test_all_bytes_pushed_once(tiny_config, name, factory):
    trainer = Trainer(tiny_config, factory)
    result = trainer.run()
    expected = (
        result.gen_schedule.sizes.sum()
        * tiny_config.n_iterations
        * tiny_config.n_workers
    )
    assert trainer.ps.total_push_bytes == pytest.approx(expected, rel=1e-9)


@pytest.mark.parametrize("name,factory", ALL_FACTORIES)
def test_gradient_record_event_ordering(tiny_config, name, factory):
    result = run_training(tiny_config, factory)
    recs = result.gradient_records(worker=0)
    assert recs, "no gradient records"
    for r in recs:
        assert np.isfinite(r.ready)
        assert np.isfinite(r.push_start)
        assert r.ready <= r.push_start + 1e-9
        assert r.push_start <= r.push_end + 1e-9
        assert r.push_end <= r.pull_end + 1e-9


@pytest.mark.parametrize("name,factory", ALL_FACTORIES)
def test_iteration_boundaries_monotone(tiny_config, name, factory):
    result = run_training(tiny_config, factory)
    for w in range(tiny_config.n_workers):
        recs = result.recorder.worker_iterations(w)
        for r in recs:
            assert r.fwd_start <= r.fwd_end <= r.bwd_end
        starts = [r.fwd_start for r in recs]
        assert starts == sorted(starts)


def test_bsp_gates_forward_on_all_pulls(tiny_config):
    """Forward of iteration k+1 never starts before every pull of k."""
    result = run_training(tiny_config, prophet_factory())
    for w in range(tiny_config.n_workers):
        iters = {r.iteration: r for r in result.recorder.worker_iterations(w)}
        for k in range(tiny_config.n_iterations - 1):
            pulls = [
                r.pull_end
                for r in result.gradient_records(worker=w, iteration=k)
            ]
            # Layer 0's tensors must be pulled before fwd k+1 starts...
            recs0 = [
                r for r in result.gradient_records(worker=w, iteration=k)
                if r.grad in (0, 1)
            ]
            fwd_next = iters[k + 1].fwd_start
            for r in recs0:
                assert r.pull_end <= iters[k + 1].fwd_end + 1e-9
            # ...and all pulls must complete before fwd k+1 *ends*.
            assert max(pulls) <= iters[k + 1].fwd_end + 1e-9
            assert fwd_next >= iters[k].bwd_end - 1e-9


def test_pushes_of_one_iteration_in_offset_order(tiny_config):
    """Per gradient, the channel carries bytes strictly in order."""
    result = run_training(tiny_config, p3_factory(partition_size=1024 * 1024))
    # Validated internally by PS (offset continuity) — reaching here with
    # no SimulationError is the assertion; spot-check one record too.
    recs = result.gradient_records(worker=0, iteration=2)
    assert all(np.isfinite(r.pull_end) for r in recs)


def test_paired_runs_are_deterministic(tiny_config):
    r1 = run_training(tiny_config, prophet_factory())
    r2 = run_training(tiny_config, prophet_factory())
    assert r1.training_rate(skip=1) == pytest.approx(r2.training_rate(skip=1))
    assert r1.end_time == pytest.approx(r2.end_time)


def test_different_seeds_differ(tiny_config):
    from dataclasses import replace

    r1 = run_training(tiny_config, prophet_factory())
    r2 = run_training(replace(tiny_config, seed=123), prophet_factory())
    # Different jitter draws shift the iteration boundaries.
    s1 = [r.fwd_start for r in r1.recorder.worker_iterations(0)]
    s2 = [r.fwd_start for r in r2.recorder.worker_iterations(0)]
    assert s1 != s2


def test_duplex_mode_runs_and_is_faster(tiny_config):
    from dataclasses import replace

    shared = run_training(tiny_config, bytescheduler_factory())
    duplex = run_training(replace(tiny_config, duplex=True), bytescheduler_factory())
    # Two independent links cannot be slower than one shared channel.
    assert duplex.training_rate(skip=1) >= shared.training_rate(skip=1) * 0.999


def test_heterogeneous_bandwidth_slows_cluster(tiny_config):
    from dataclasses import replace

    slow = replace(tiny_config, worker_bandwidth={0: 100 * Mbps})
    base = run_training(tiny_config, prophet_factory())
    hetero = run_training(slow, prophet_factory())
    assert hetero.training_rate(skip=1) < base.training_rate(skip=1)
    # BSP: the fast worker is dragged down to the slow worker's pace.
    fast_rate = hetero.per_worker_rate(1, skip=1)
    assert fast_rate < base.per_worker_rate(1, skip=1)


def test_straggler_compute_slows_cluster(tiny_config):
    from dataclasses import replace

    straggler = replace(tiny_config, worker_compute_scale={1: 2.0})
    base = run_training(tiny_config, fifo_factory())
    slow = run_training(straggler, fifo_factory())
    assert slow.training_rate(skip=1) < base.training_rate(skip=1)


def test_more_bandwidth_never_hurts(tiny_config):
    from dataclasses import replace

    rates = []
    for gbps in (0.5, 1.0, 4.0):
        cfg = replace(tiny_config, bandwidth=gbps * Gbps)
        rates.append(run_training(cfg, prophet_factory()).training_rate(skip=1))
    assert rates[0] <= rates[1] * 1.02
    assert rates[1] <= rates[2] * 1.02


def test_single_worker_cluster(tiny_config):
    from dataclasses import replace

    cfg = replace(tiny_config, n_workers=1)
    result = run_training(cfg, prophet_factory())
    assert result.training_rate(skip=1) > 0


def test_online_profiling_prophet_transitions(tiny_config):
    from dataclasses import replace

    cfg = replace(tiny_config, n_iterations=8)
    trainer = Trainer(
        cfg, prophet_factory(oracle_profile=False, profile_iterations=3)
    )
    result = trainer.run()
    for sched in trainer.schedulers:
        assert sched.active  # profile built during the run
        assert sched.planned_iterations >= 1
    assert result.training_rate(skip=4) > 0


def test_summary_keys(tiny_config):
    result = run_training(tiny_config, fifo_factory())
    summary = result.summary(skip=1)
    assert set(summary) == {
        "training_rate",
        "mean_iteration_s",
        "gpu_utilization",
        "throughput_bytes_per_s",
    }
    assert 0 < summary["gpu_utilization"] <= 1
