"""Unit tests for the parameter server's BSP aggregation."""

import numpy as np
import pytest

from repro.cluster.ps import ParameterServer
from repro.errors import SimulationError
from repro.sched.base import Segment, TransferUnit
from repro.sim.engine import Engine


class FakeWorker:
    def __init__(self):
        self.pulls = []

    def enqueue_pull(self, pull):
        self.pulls.append(pull)


@pytest.fixture
def setup():
    engine = Engine()
    sizes = np.array([100.0, 200.0, 300.0])
    ps = ParameterServer(engine, n_workers=2, sizes=sizes, update_fixed=1e-3)
    workers = [FakeWorker(), FakeWorker()]
    ps.attach_workers(workers)
    return engine, ps, workers


def _unit(grad, offset, nbytes):
    return TransferUnit(segments=(Segment(grad=grad, offset=offset, nbytes=nbytes),))


def test_pull_released_only_after_all_workers_push(setup):
    engine, ps, workers = setup
    ps.receive_push(0, 0, _unit(1, 0.0, 200.0))
    engine.run()
    assert workers[0].pulls == []  # worker 1 has not pushed yet
    ps.receive_push(1, 0, _unit(1, 0.0, 200.0))
    engine.run()
    assert len(workers[0].pulls) == 1
    assert len(workers[1].pulls) == 1
    assert workers[0].pulls[0].segment.grad == 1


def test_update_delay_applied(setup):
    engine, ps, workers = setup
    ps.receive_push(0, 0, _unit(0, 0.0, 100.0))
    ps.receive_push(1, 0, _unit(0, 0.0, 100.0))
    t_push = engine.now
    engine.run()
    assert engine.now == pytest.approx(t_push + 1e-3)
    assert len(workers[0].pulls) == 1


def test_partial_ranges_aggregate_independently(setup):
    engine, ps, workers = setup
    ps.receive_push(0, 0, _unit(2, 0.0, 150.0))
    ps.receive_push(1, 0, _unit(2, 0.0, 100.0))
    engine.run()
    # Worker 1's first 100 bytes are aggregated; worker 0's 150 are not.
    assert len(workers[1].pulls) == 1
    assert workers[1].pulls[0].total_bytes == 100.0
    assert len(workers[0].pulls) == 0
    ps.receive_push(1, 0, _unit(2, 100.0, 200.0))
    engine.run()
    assert len(workers[0].pulls) == 1  # range 0-150 now covered


def test_iterations_are_independent(setup):
    engine, ps, workers = setup
    ps.receive_push(0, 0, _unit(0, 0.0, 100.0))
    ps.receive_push(1, 1, _unit(0, 0.0, 100.0))
    engine.run()
    assert workers[0].pulls == []
    assert workers[1].pulls == []
    assert ps.aggregated_bytes(0, 0) == 0.0
    assert ps.aggregated_bytes(1, 0) == 0.0


def test_multi_segment_unit_releases_per_key(setup):
    engine, ps, workers = setup
    unit = TransferUnit(
        segments=(
            Segment(grad=0, offset=0.0, nbytes=100.0),
            Segment(grad=1, offset=0.0, nbytes=200.0),
        )
    )
    ps.receive_push(0, 0, unit)
    ps.receive_push(1, 0, _unit(0, 0.0, 100.0))
    engine.run()
    # Gradient 0 aggregated -> released for both; gradient 1 still waiting.
    grads_w0 = [p.segment.grad for p in workers[0].pulls]
    assert grads_w0 == [0]
    assert ps.pending_pulls == 1  # worker 0's gradient-1 pull


def test_out_of_order_offset_raises(setup):
    engine, ps, workers = setup
    with pytest.raises(SimulationError):
        ps.receive_push(0, 0, _unit(0, 50.0, 10.0))


def test_over_push_raises(setup):
    engine, ps, workers = setup
    ps.receive_push(0, 0, _unit(0, 0.0, 100.0))
    with pytest.raises(SimulationError):
        ps.receive_push(0, 0, _unit(0, 100.0, 1.0))


def test_total_push_bytes_accumulates(setup):
    engine, ps, workers = setup
    ps.receive_push(0, 0, _unit(0, 0.0, 100.0))
    ps.receive_push(1, 0, _unit(0, 0.0, 100.0))
    assert ps.total_push_bytes == 200.0


def test_attach_wrong_worker_count_raises():
    engine = Engine()
    ps = ParameterServer(engine, n_workers=3, sizes=np.ones(2))
    with pytest.raises(SimulationError):
        ps.attach_workers([FakeWorker()])
