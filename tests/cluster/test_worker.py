"""Targeted worker-level tests: arbitration, forward gating, stall timer."""

from dataclasses import replace

import numpy as np

from repro.cluster.trainer import Trainer, run_training
from repro.config import SchedulerConfig
from repro.workloads.presets import (
    bytescheduler_factory,
    fifo_factory,
    prophet_factory,
)


class TestChannelArbitration:
    def test_priority_mode_pulls_return_in_priority_order(self, tiny_config):
        """Under priority arbitration gradient 0's parameters return
        before every lower-priority gradient's (the forward pass needs
        them first)."""
        result = run_training(tiny_config, prophet_factory())
        recs = {r.grad: r for r in result.gradient_records(0, iteration=3)}
        assert recs[0].pull_end <= min(r.pull_end for r in recs.values()) + 1e-9

    def test_fifo_mode_interleaves_by_arrival(self, tiny_config):
        """The MXNet engine processes the queue in arrival order: pulls
        enqueued after later pushes complete after them."""
        result = run_training(tiny_config, fifo_factory())
        recs = {r.grad: r for r in result.gradient_records(0, iteration=3)}
        # Gradient 0 is generated last, so under FIFO its pull is the (or
        # nearly the) last communication event of the iteration.
        pulls = sorted(r.pull_end for r in recs.values())
        assert recs[0].pull_end >= pulls[-2]


class TestForwardGating:
    def test_forward_layers_wait_for_their_params(self, tiny_config):
        result = run_training(tiny_config, fifo_factory())
        for k in range(1, tiny_config.n_iterations - 1):
            prev = {r.grad: r for r in result.gradient_records(0, iteration=k - 1)}
            iters = {r.iteration: r for r in result.recorder.worker_iterations(0)}
            # Layer 0 owns gradients 0,1: forward k cannot *finish its
            # first chunk* before both are pulled.  Conservative check:
            # fwd_end(k) >= pull_end of every gradient of iteration k-1.
            last_pull = max(r.pull_end for r in prev.values())
            assert iters[k].fwd_end >= last_pull - 1e-9

    def test_gpu_intervals_do_not_overlap(self, tiny_config):
        result = run_training(tiny_config, prophet_factory())
        for w in range(tiny_config.n_workers):
            spans = result.recorder.gpu_busy_intervals(w)
            assert np.all(spans[1:, 0] >= spans[:-1, 1] - 1e-9)


class TestStallTimer:
    def test_stall_probe_unwedges_flow_control(self, tiny_config):
        """With a tiny credit, ByteScheduler relies on probes to finish."""
        config = replace(tiny_config, jitter_std=0.05, n_iterations=4)
        result = run_training(
            config, bytescheduler_factory(credit=1024 * 512, partition_size=1024 * 256)
        )
        assert result.training_rate(skip=1) > 0

    def test_stall_timeout_configurable(self, tiny_config):
        fast = replace(tiny_config, sched=SchedulerConfig(stall_timeout=1e-3))
        slow = replace(tiny_config, sched=SchedulerConfig(stall_timeout=0.2))
        rf = run_training(fast, bytescheduler_factory(credit=1024 * 512))
        rs = run_training(slow, bytescheduler_factory(credit=1024 * 512))
        # Faster probes can only help a wedged window.
        assert rf.training_rate(skip=1) >= rs.training_rate(skip=1) * 0.99


class TestWorkerAccessors:
    def test_done_and_fwd_start_times(self, tiny_config):
        trainer = Trainer(tiny_config, fifo_factory())
        trainer.run()
        for worker in trainer.workers:
            assert worker.done
            starts = worker.fwd_start_times
            assert len(starts) == tiny_config.n_iterations
            assert starts == sorted(starts)
