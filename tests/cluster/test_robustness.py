"""Robustness and failure-injection tests.

The simulation must stay correct (complete, conserve bytes, keep event
ordering) under hostile conditions: bandwidth collapse mid-run, wrong
profiles, wrong monitor readings, degenerate configurations.
"""

from dataclasses import replace

import pytest

from repro.cluster.trainer import Trainer, run_training
from repro.config import TrainingConfig
from repro.core.profiler import JobProfile
from repro.net.link import BandwidthSchedule
from repro.quantities import Gbps, KB, Mbps
from repro.sched.prophet_sched import ProphetScheduler
from repro.workloads.presets import (
    STRATEGY_FACTORIES,
    p3_factory,
    prophet_factory,
)


def test_bandwidth_collapse_mid_run(tiny_config):
    """Available bandwidth drops 10x partway through training."""
    schedule = BandwidthSchedule([(0.0, 1 * Gbps), (1.0, 100 * Mbps)])
    config = replace(tiny_config, bandwidth=schedule, n_iterations=8)
    for name, factory in STRATEGY_FACTORIES.items():
        result = run_training(config, factory)
        spans = result.iteration_spans(0, skip=1)
        assert len(spans) == 6
        # Later iterations are slower than early ones.
        assert spans[-1] > spans[0]


def test_bandwidth_recovery_mid_run(tiny_config):
    schedule = BandwidthSchedule([(0.0, 100 * Mbps), (3.0, 1 * Gbps)])
    config = replace(tiny_config, bandwidth=schedule, n_iterations=8)
    result = run_training(config, prophet_factory())
    spans = result.iteration_spans(0, skip=1)
    assert spans[-1] < spans[0]


def test_prophet_with_badly_wrong_profile(tiny_config):
    """A profile off by 2x in time must degrade, never deadlock."""

    def bad_profile_factory(ctx):
        wrong = JobProfile(
            c=ctx.oracle_profile.c * 2.0,  # predicts everything late
            sizes=ctx.oracle_profile.sizes,
            iterations=0,
        )
        monitor = ctx.monitor
        return ProphetScheduler(
            bandwidth_provider=lambda: monitor.bandwidth,
            profile=wrong,
            tcp=ctx.tcp,
        )

    good = run_training(tiny_config, prophet_factory()).training_rate(skip=1)
    bad = run_training(tiny_config, bad_profile_factory).training_rate(skip=1)
    assert bad > 0
    assert bad <= good * 1.05


def test_prophet_with_early_profile(tiny_config):
    """A profile off by 0.5x (predicts everything early) still completes."""

    def early_profile_factory(ctx):
        wrong = JobProfile(
            c=ctx.oracle_profile.c * 0.5,
            sizes=ctx.oracle_profile.sizes,
            iterations=0,
        )
        monitor = ctx.monitor
        return ProphetScheduler(
            bandwidth_provider=lambda: monitor.bandwidth,
            profile=wrong,
            tcp=ctx.tcp,
        )

    result = run_training(tiny_config, early_profile_factory)
    assert result.training_rate(skip=1) > 0


@pytest.mark.parametrize("factor", [0.1, 10.0])
def test_prophet_with_wrong_bandwidth_estimate(tiny_config, factor):
    """A monitor that misreads bandwidth by 10x either way is survivable."""

    def wrong_bw_factory(ctx):
        monitor = ctx.monitor
        return ProphetScheduler(
            bandwidth_provider=lambda: monitor.bandwidth * factor,
            profile=ctx.oracle_profile,
            tcp=ctx.tcp,
        )

    result = run_training(tiny_config, wrong_bw_factory)
    assert result.training_rate(skip=1) > 0


def test_noisy_bandwidth_links(tiny_config):
    config = replace(tiny_config, bandwidth_noise_std=0.2)
    for name, factory in STRATEGY_FACTORIES.items():
        result = run_training(config, factory)
        assert result.training_rate(skip=1) > 0


def test_absurdly_small_p3_partitions(tiny_config):
    config = replace(tiny_config, n_iterations=4)
    slow = run_training(config, p3_factory(partition_size=64 * KB))
    fast = run_training(config, p3_factory(partition_size=4 * 1024 * KB))
    assert slow.training_rate(skip=1) < fast.training_rate(skip=1)


def test_single_iteration_run(tiny_config):
    config = replace(tiny_config, n_iterations=1)
    trainer = Trainer(config, prophet_factory())
    result = trainer.run()
    assert len(result.recorder.worker_iterations(0)) == 1
    expected = result.gen_schedule.sizes.sum() * config.n_workers
    assert trainer.ps.total_push_bytes == pytest.approx(expected)


def test_single_bucket_aggregation(tiny_config):
    from repro.agg.policies import ExplicitGroupsPolicy

    config = replace(
        tiny_config, agg_policy=ExplicitGroupsPolicy((tuple(range(8)),))
    )
    result = run_training(config, prophet_factory())
    assert result.training_rate(skip=1) > 0


def test_zero_jitter_fully_deterministic(tiny_config):
    config = replace(tiny_config, jitter_std=0.0)
    r1 = run_training(config, prophet_factory())
    r2 = run_training(config, prophet_factory())
    s1 = [r.fwd_start for r in r1.recorder.worker_iterations(0)]
    s2 = [r.fwd_start for r in r2.recorder.worker_iterations(0)]
    assert s1 == s2


def test_large_tensor_model_completes():
    """VGG-19's 392 MB fc tensor traverses the pipeline correctly."""
    config = TrainingConfig(
        model="vgg19",
        batch_size=8,
        n_workers=2,
        n_iterations=3,
        bandwidth=10 * Gbps,
        record_gradients=False,
    )
    for factory in STRATEGY_FACTORIES.values():
        result = run_training(config, factory)
        assert result.training_rate(skip=1) > 0


def test_extreme_heterogeneity(tiny_config):
    config = replace(
        tiny_config,
        worker_bandwidth={0: 20 * Mbps},
        n_iterations=4,
    )
    result = run_training(config, prophet_factory())
    # Both workers forced to the slow worker's pace (BSP).
    r0 = result.per_worker_rate(0, skip=1)
    r1 = result.per_worker_rate(1, skip=1)
    assert r0 == pytest.approx(r1, rel=0.25)
