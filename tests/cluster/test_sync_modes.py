"""Tests for ASP / SSP synchronization (the paper's future-work item 1)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.ps import ParameterServer
from repro.cluster.trainer import run_training
from repro.errors import ConfigurationError
from repro.sched.base import Segment, TransferUnit
from repro.sim.engine import Engine
from repro.workloads.presets import bytescheduler_factory, prophet_factory


class FakeWorker:
    def __init__(self):
        self.pulls = []

    def enqueue_pull(self, pull):
        self.pulls.append(pull)


def _unit(grad, offset, nbytes):
    return TransferUnit(segments=(Segment(grad=grad, offset=offset, nbytes=nbytes),))


def _ps(sync_mode, staleness=1):
    engine = Engine()
    ps = ParameterServer(
        engine,
        n_workers=2,
        sizes=np.array([100.0, 200.0]),
        update_fixed=0.0,
        sync_mode=sync_mode,
        staleness=staleness,
    )
    workers = [FakeWorker(), FakeWorker()]
    ps.attach_workers(workers)
    return engine, ps, workers


class TestASP:
    def test_pull_released_without_other_workers(self):
        engine, ps, workers = _ps("asp")
        ps.receive_push(0, 0, _unit(0, 0.0, 100.0))
        engine.run()
        assert len(workers[0].pulls) == 1
        assert workers[1].pulls == []

    def test_workers_can_drift_arbitrarily(self):
        engine, ps, workers = _ps("asp")
        for it in range(5):
            ps.receive_push(0, it, _unit(0, 0.0, 100.0))
        engine.run()
        assert len(workers[0].pulls) == 5
        assert ps.pending_pulls == 0


class TestSSP:
    def test_within_staleness_released_immediately(self):
        engine, ps, workers = _ps("ssp", staleness=1)
        ps.receive_push(0, 0, _unit(0, 0.0, 100.0))
        ps.receive_push(0, 1, _unit(0, 0.0, 100.0))
        engine.run()
        assert len(workers[0].pulls) == 2  # iterations 0,1 within bound

    def test_beyond_staleness_blocks_until_slow_worker_catches_up(self):
        engine, ps, workers = _ps("ssp", staleness=1)
        for it in range(4):
            ps.receive_push(0, it, _unit(0, 0.0, 100.0))
        engine.run()
        # Iterations 0,1 are within bound (worker 1's clock is 0);
        # iterations 2,3 need worker 1's clock >= 1 resp. 2.
        assert len(workers[0].pulls) == 2
        assert ps.pending_pulls == 2
        ps.receive_push(1, 0, _unit(0, 0.0, 100.0))
        engine.run()
        assert len(workers[0].pulls) == 3  # clock 1 releases iteration 2
        ps.receive_push(1, 1, _unit(0, 0.0, 100.0))
        engine.run()
        assert len(workers[0].pulls) == 4
        assert ps.pending_pulls == 0

    def test_staleness_zero_requires_previous_iteration_complete(self):
        engine, ps, workers = _ps("ssp", staleness=0)
        ps.receive_push(0, 1, _unit(0, 0.0, 100.0))
        engine.run()
        assert workers[0].pulls == []  # worker 1 has not completed iter 0
        ps.receive_push(1, 0, _unit(0, 0.0, 100.0))
        engine.run()
        assert len(workers[0].pulls) == 1


class TestValidation:
    def test_unknown_mode_rejected(self):
        engine = Engine()
        with pytest.raises(ConfigurationError):
            ParameterServer(engine, 1, np.ones(1), sync_mode="gossip")

    def test_negative_staleness_rejected(self):
        engine = Engine()
        with pytest.raises(ConfigurationError):
            ParameterServer(engine, 1, np.ones(1), sync_mode="ssp", staleness=-1)


class TestEndToEnd:
    @pytest.mark.parametrize("mode", ["asp", "ssp"])
    def test_training_completes(self, tiny_config, mode):
        config = replace(tiny_config, sync_mode=mode)
        result = run_training(config, prophet_factory())
        assert result.training_rate(skip=1) > 0

    def test_asp_at_least_as_fast_as_bsp_with_jitter(self, tiny_config):
        jittery = replace(tiny_config, jitter_std=0.05)
        bsp = run_training(jittery, bytescheduler_factory()).training_rate(skip=1)
        asp = run_training(
            replace(jittery, sync_mode="asp"), bytescheduler_factory()
        ).training_rate(skip=1)
        # Removing the barrier can only help (same everything else).
        assert asp >= bsp * 0.99

    def test_ssp_between_bsp_and_asp(self, tiny_config):
        jittery = replace(tiny_config, jitter_std=0.08, n_iterations=8)
        rates = {}
        for mode in ("bsp", "ssp", "asp"):
            cfg = replace(jittery, sync_mode=mode, ssp_staleness=1)
            rates[mode] = run_training(cfg, prophet_factory()).training_rate(skip=2)
        assert rates["asp"] >= rates["bsp"] * 0.99
        assert rates["ssp"] >= rates["bsp"] * 0.99
        assert rates["ssp"] <= rates["asp"] * 1.01
