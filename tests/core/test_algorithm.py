"""Unit tests for Algorithm 1 (the offline Prophet planner)."""

import numpy as np
import pytest

from repro.agg.kvstore import KVStore
from repro.core.algorithm import plan_schedule
from repro.core.blocks import ProphetPlan
from repro.core.perf_model import PerfModelInputs, check_constraints
from repro.core.profiler import JobProfile
from repro.errors import ConfigurationError, SchedulingError
from repro.models.compute import build_compute_profile
from repro.net.tcp import TCPParams
from repro.quantities import Gbps, MB

TCP = TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=1.0)


@pytest.fixture
def profile(tiny_model, tiny_device):
    prof = build_compute_profile(tiny_model, tiny_device, batch_size=8)
    return JobProfile.from_generation_schedule(KVStore().generation_schedule(prof))


def test_plan_covers_every_gradient_once(profile):
    plan = plan_schedule(profile, 1 * Gbps, TCP)
    assert plan.num_gradients == profile.num_gradients
    grads = sorted(t.grad for t in plan.transfers)
    assert grads == list(range(profile.num_gradients))


def test_plan_satisfies_all_constraints(profile):
    for bandwidth in (0.2 * Gbps, 1 * Gbps, 10 * Gbps):
        plan = plan_schedule(profile, bandwidth, TCP)
        inputs = PerfModelInputs(
            c=profile.c,
            t=plan.start_times,
            e=plan.durations,
            fp=np.zeros(profile.num_gradients),
            total_bwd=float(profile.c.max()),
        )
        check_constraints(inputs)


def test_gradient_zero_starts_at_its_generation(profile):
    plan = plan_schedule(profile, 1 * Gbps, TCP)
    assert plan.start_times[0] == pytest.approx(float(profile.c[0]))


def test_critical_block_is_solo_gradient_zero(profile):
    plan = plan_schedule(profile, 1 * Gbps, TCP)
    critical = [b for b in plan.blocks if b.phase == "critical"]
    assert len(critical) == 1
    assert critical[0].grads == (0,)


def test_high_bandwidth_transfers_everything_during_backward(profile):
    plan = plan_schedule(profile, 100 * Gbps, TCP)
    backward_grads = {g for b in plan.backward_blocks() for g in b.grads}
    # Everything except the final burst (incl. gradient 0) fits in-interval.
    final_burst = {0, 1}
    assert backward_grads >= set(range(profile.num_gradients)) - final_burst


def test_low_bandwidth_defers_to_forward_phase(profile):
    plan = plan_schedule(profile, 0.01 * Gbps, TCP)
    assert len(plan.backward_blocks()) == 0
    fw = plan.forward_blocks()
    assert sum(len(b.grads) for b in fw) == profile.num_gradients


def test_forward_blocks_respect_size_cap(profile):
    plan = plan_schedule(profile, 0.05 * Gbps, TCP, forward_block_bytes=2 * MB)
    for block in plan.forward_blocks():
        if len(block.grads) > 1:
            assert block.nbytes <= 2 * MB + 1e-6


def test_forward_blocks_in_priority_order(profile):
    plan = plan_schedule(profile, 0.05 * Gbps, TCP)
    fw = [g for b in plan.forward_blocks() for g in b.grads]
    assert fw == sorted(fw)


def test_block_durations_match_transfer_sums(profile):
    plan = plan_schedule(profile, 1 * Gbps, TCP)
    by_grad = {t.grad: t for t in plan.transfers}
    for block in plan.blocks:
        total = sum(by_grad[g].duration for g in block.grads)
        assert total == pytest.approx(block.duration, rel=1e-9)
        assert by_grad[block.grads[0]].start == pytest.approx(block.start)


def test_plan_is_deterministic(profile):
    p1 = plan_schedule(profile, 1 * Gbps, TCP)
    p2 = plan_schedule(profile, 1 * Gbps, TCP)
    assert np.array_equal(p1.start_times, p2.start_times)


def test_invalid_args_raise(profile):
    with pytest.raises(ConfigurationError):
        plan_schedule(profile, 0.0, TCP)
    with pytest.raises(ConfigurationError):
        plan_schedule(profile, 1 * Gbps, TCP, forward_block_bytes=0.0)


def test_plan_validates_double_scheduling():
    from repro.core.blocks import PlannedTransfer, GradientBlock

    with pytest.raises(SchedulingError):
        ProphetPlan(
            transfers=(
                PlannedTransfer(0, 0.0, 1.0),
                PlannedTransfer(0, 2.0, 1.0),
            ),
            blocks=(
                GradientBlock((0,), 0.0, 1.0, 1.0, "backward"),
                GradientBlock((0,), 2.0, 1.0, 1.0, "forward"),
            ),
        )
