"""Unit tests for the Sec. 3 performance model (Eqs. (1)-(5))."""

import numpy as np
import pytest

from repro.agg.kvstore import KVStore
from repro.core.algorithm import plan_schedule
from repro.core.perf_model import (
    PerfModelInputs,
    check_constraints,
    evaluate_schedule,
    per_gradient_fwd_times,
    wait_time,
)
from repro.core.profiler import JobProfile
from repro.errors import ConfigurationError, SchedulingError
from repro.models.compute import build_compute_profile
from repro.net.tcp import TCPParams, transfer_time
from repro.quantities import Gbps

TCP = TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=1.0)


def _inputs(c, t, e, fp=None, total_bwd=None):
    c = np.asarray(c, dtype=float)
    fp = np.zeros_like(c) if fp is None else np.asarray(fp, dtype=float)
    return PerfModelInputs(
        c=c,
        t=np.asarray(t, dtype=float),
        e=np.asarray(e, dtype=float),
        fp=fp,
        total_bwd=float(c.max()) if total_bwd is None else total_bwd,
    )


class TestRecursion:
    def test_two_gradient_hand_computation(self):
        # c = [0.2, 0.1]; send grad 1 at 0.1 (E=0.02), grad 0 at 0.2 (E=0.03).
        inputs = _inputs(
            c=[0.2, 0.1], t=[0.2, 0.1], e=[0.03, 0.02], fp=[0.05, 0.05]
        )
        ev = evaluate_schedule(inputs)
        # u0 = 0.2 + 0.06 = 0.26; u1 = 0.1 + 0.04 = 0.14
        assert ev.u == pytest.approx([0.26, 0.14])
        # p0 = 0.26 + 0.05 = 0.31; p1 = max(0.31, 0.14) + 0.05 = 0.36
        assert ev.p == pytest.approx([0.31, 0.36])
        # T_wait = (u0 - c0) + (u1 - p0)^+ = 0.06 + 0
        assert ev.t_wait == pytest.approx(0.06)
        assert ev.iteration_time == pytest.approx(0.2 + 0.1 + 0.06)

    def test_late_update_adds_wait(self):
        inputs = _inputs(
            c=[0.2, 0.1], t=[0.2, 0.5], e=[0.01, 0.01], fp=[0.01, 0.01]
        )
        ev = evaluate_schedule(inputs)
        # u1 = 0.52 > p0 = 0.23 -> gap of 0.29 counted.
        assert ev.t_wait == pytest.approx((0.22 - 0.2) + (0.52 - 0.23))

    def test_wait_time_matches_evaluate(self):
        inputs = _inputs(c=[0.3, 0.2, 0.1], t=[0.3, 0.2, 0.1], e=[0.01] * 3)
        assert wait_time(inputs) == pytest.approx(evaluate_schedule(inputs).t_wait)

    def test_perfect_overlap_gives_minimal_wait(self):
        """If every u(i) lands before p(i-1), only u(0)-c(0) remains."""
        inputs = _inputs(
            c=[0.3, 0.2, 0.1],
            t=[0.3, 0.2, 0.1],
            e=[0.005, 0.005, 0.005],
            fp=[0.1, 0.1, 0.1],
        )
        ev = evaluate_schedule(inputs)
        assert ev.t_wait == pytest.approx(0.01)  # 2 * E(0)


class TestConstraints:
    def test_valid_schedule_passes(self):
        inputs = _inputs(c=[0.2, 0.1], t=[0.2, 0.1], e=[0.02, 0.02])
        check_constraints(inputs)

    def test_constraint7_start_before_generation(self):
        inputs = _inputs(c=[0.2, 0.1], t=[0.15, 0.1], e=[0.01, 0.01])
        with pytest.raises(SchedulingError, match="Constraint \\(7\\)"):
            check_constraints(inputs)

    def test_constraint8_overlap(self):
        inputs = _inputs(c=[0.2, 0.1], t=[0.205, 0.2], e=[0.01, 0.02])
        with pytest.raises(SchedulingError, match="Constraint \\(8\\)"):
            check_constraints(inputs)

    def test_constraint9_forward_priority_order(self):
        # Both transfers after c(0)=0.2; grad 1 sent BEFORE grad 0 in the
        # forward phase: a priority inversion.
        inputs = _inputs(c=[0.2, 0.1], t=[0.30, 0.25], e=[0.01, 0.01])
        with pytest.raises(SchedulingError, match="Constraint \\(9\\)"):
            check_constraints(inputs)

    def test_forward_priority_order_correct_direction_passes(self):
        inputs = _inputs(c=[0.2, 0.1], t=[0.25, 0.30], e=[0.01, 0.01])
        check_constraints(inputs)

    def test_constraint11_overrun_into_generation(self):
        # Grad 1 transfers 0.1->0.25, overrunning c(0)=0.2 while pending.
        inputs = _inputs(c=[0.2, 0.1], t=[0.26, 0.1], e=[0.01, 0.15])
        with pytest.raises(SchedulingError, match="Constraint \\(11\\)"):
            check_constraints(inputs)


class TestProphetOptimality:
    """Prophet's plan should dominate naive schedules under Eq. (2)."""

    @pytest.fixture
    def setup(self, tiny_model, tiny_device):
        compute = build_compute_profile(tiny_model, tiny_device, batch_size=8)
        sched = KVStore().generation_schedule(compute)
        profile = JobProfile.from_generation_schedule(sched)
        fp = per_gradient_fwd_times(compute)
        return compute, sched, profile, fp

    # Note: at severely constrained bandwidth the *gradient-granular*
    # offline planner defers everything past c(0) (Constraint 11 leaves
    # no whole gradient fitting an interval) and can lose to FIFO under
    # Eq. (2) — the reason Prophet slices gradients online (Fig. 5).
    # The guarantee below therefore targets the regime the paper evaluates,
    # where interval capacity carries at least single gradients.
    @pytest.mark.parametrize("gbps", [1.0, 3.0])
    def test_prophet_wait_leq_fifo(self, setup, gbps):
        compute, sched, profile, fp = setup
        bandwidth = gbps * Gbps
        plan = plan_schedule(profile, bandwidth, TCP)
        prophet_inputs = PerfModelInputs(
            c=profile.c, t=plan.start_times, e=plan.durations,
            fp=fp, total_bwd=compute.total_bwd,
        )
        # FIFO: whole tensors, generation order, back to back.
        t = np.empty(profile.num_gradients)
        e = np.empty(profile.num_gradients)
        cursor = 0.0
        for g in sched.generation_order:
            dur = float(transfer_time(profile.sizes[g], bandwidth, TCP))
            start = max(cursor, float(profile.c[g]))
            t[g], e[g] = start, dur
            cursor = start + dur
        fifo_inputs = PerfModelInputs(
            c=profile.c, t=t, e=e, fp=fp, total_bwd=compute.total_bwd
        )
        assert wait_time(prophet_inputs) <= wait_time(fifo_inputs) + 1e-9


class TestPerGradientFwdTimes:
    def test_assigned_to_last_tensor_of_layer(self, tiny_model, tiny_device):
        compute = build_compute_profile(tiny_model, tiny_device, batch_size=8)
        fp = per_gradient_fwd_times(compute)
        assert fp.sum() == pytest.approx(compute.total_fwd)
        # Layer l3 owns gradients 5,6,7: time lands on 7.
        assert fp[7] > 0
        assert fp[5] == 0 and fp[6] == 0

    def test_paramless_layers_accrue_forward(self):
        from repro.models.registry import get_model
        from repro.models.device import DeviceSpec

        model = get_model("resnet18")
        dev = DeviceSpec(name="d", peak_flops=1e12)
        compute = build_compute_profile(model, dev, batch_size=4)
        fp = per_gradient_fwd_times(compute)
        assert fp.sum() == pytest.approx(compute.total_fwd, rel=1e-9)


class TestValidation:
    def test_mismatched_lengths_raise(self):
        with pytest.raises(ConfigurationError):
            PerfModelInputs(
                c=np.zeros(3), t=np.zeros(2), e=np.zeros(3),
                fp=np.zeros(3), total_bwd=1.0,
            )

    def test_empty_inputs_raise(self):
        with pytest.raises(ConfigurationError):
            PerfModelInputs(
                c=np.zeros(0), t=np.zeros(0), e=np.zeros(0),
                fp=np.zeros(0), total_bwd=1.0,
            )
