"""Unit tests for block time intervals A(i)."""

import numpy as np
import pytest

from repro.core.intervals import block_intervals, next_generation_boundary


def test_block_intervals_staircase():
    # Generation order: {3,2} at 0.1, {1} at 0.25, {0} at 0.4.
    c = np.array([0.4, 0.25, 0.1, 0.1])
    a = block_intervals(c)
    assert a[3] == pytest.approx(0.15)
    assert a[2] == pytest.approx(0.15)
    assert a[1] == pytest.approx(0.15)
    assert np.isinf(a[0])  # final block: no later generation


def test_block_intervals_single_block_all_inf():
    a = block_intervals(np.zeros(4))
    assert np.all(np.isinf(a))


def test_block_intervals_uneven_steps():
    c = np.array([1.0, 0.6, 0.1])
    a = block_intervals(c)
    assert a[2] == pytest.approx(0.5)
    assert a[1] == pytest.approx(0.4)
    assert np.isinf(a[0])


def test_next_generation_boundary_basic():
    c = np.array([0.4, 0.25, 0.1])
    pending = np.array([True, True, False])  # grads 0,1 not yet generated
    assert next_generation_boundary(c, pending, now=0.12) == pytest.approx(0.25)


def test_next_generation_boundary_none_pending():
    c = np.array([0.4, 0.25, 0.1])
    pending = np.zeros(3, dtype=bool)
    assert np.isinf(next_generation_boundary(c, pending, now=0.5))


def test_next_generation_boundary_late_prediction_clamps_to_now():
    """A predicted event already in the past is treated as imminent."""
    c = np.array([0.4, 0.25, 0.1])
    pending = np.array([False, True, False])
    assert next_generation_boundary(c, pending, now=0.3) == pytest.approx(0.3)


def test_next_generation_boundary_shape_mismatch():
    with pytest.raises(ValueError):
        next_generation_boundary(np.zeros(3), np.zeros(2, dtype=bool), 0.0)
