"""Unit tests for gradient blocks and Prophet plans."""

import numpy as np
import pytest

from repro.core.blocks import GradientBlock, PlannedTransfer, ProphetPlan
from repro.errors import SchedulingError


class TestPlannedTransfer:
    def test_end(self):
        t = PlannedTransfer(grad=3, start=1.0, duration=0.5)
        assert t.end == 1.5


class TestGradientBlock:
    def test_properties(self):
        b = GradientBlock(grads=(5, 3, 4), start=1.0, duration=0.2, nbytes=100.0,
                          phase="backward")
        assert b.end == pytest.approx(1.2)
        assert b.priority == 3

    def test_empty_block_rejected(self):
        with pytest.raises(SchedulingError):
            GradientBlock(grads=(), start=0.0, duration=0.0, nbytes=0.0,
                          phase="backward")

    def test_unknown_phase_rejected(self):
        with pytest.raises(SchedulingError):
            GradientBlock(grads=(0,), start=0.0, duration=0.0, nbytes=0.0,
                          phase="sideways")


class TestProphetPlan:
    def _plan(self):
        transfers = (
            PlannedTransfer(2, 0.0, 0.1),
            PlannedTransfer(1, 0.1, 0.1),
            PlannedTransfer(0, 0.5, 0.1),
        )
        blocks = (
            GradientBlock((2, 1), 0.0, 0.2, 10.0, "backward"),
            GradientBlock((0,), 0.5, 0.1, 5.0, "critical"),
        )
        return ProphetPlan(transfers=transfers, blocks=blocks)

    def test_start_times_and_durations_indexed_by_grad(self):
        plan = self._plan()
        assert np.array_equal(plan.start_times, [0.5, 0.1, 0.0])
        assert np.array_equal(plan.durations, [0.1, 0.1, 0.1])

    def test_phase_filters(self):
        plan = self._plan()
        assert len(plan.backward_blocks()) == 1
        assert len(plan.forward_blocks()) == 1  # critical counts as forward-side

    def test_blocks_must_partition_transfers(self):
        with pytest.raises(SchedulingError):
            ProphetPlan(
                transfers=(PlannedTransfer(0, 0.0, 0.1),),
                blocks=(GradientBlock((0, 1), 0.0, 0.2, 10.0, "backward"),),
            )
