"""Cross-validation: the Sec. 3 analytic model vs the event simulator.

The analytic model (Eqs. 1-5) and the DES are independent implementations
of the same timing physics.  On a single worker with zero jitter and
Prophet's plan, their predictions must agree to first order:

* the plan's per-gradient start times match the simulated push starts for
  gradients pushed during backward propagation;
* the analytic iteration time brackets the simulated one.

The analytic model idealizes pulls (``u = t + 2E`` assumes the pull rides
immediately behind the push), so exact agreement is not expected —
agreement within a modest factor is the consistency check.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.trainer import run_training
from repro.core.algorithm import plan_schedule
from repro.core.perf_model import (
    PerfModelInputs,
    evaluate_schedule,
    per_gradient_fwd_times,
)
from repro.core.profiler import JobProfile
from repro.workloads.presets import prophet_factory


@pytest.fixture
def single_worker_config(tiny_config):
    return replace(tiny_config, n_workers=1, jitter_std=0.0, n_iterations=6)


def test_analytic_iteration_time_tracks_simulated(single_worker_config):
    result = run_training(single_worker_config, prophet_factory())
    simulated = float(result.iteration_spans(0, skip=2).mean())

    profile = JobProfile.from_generation_schedule(result.gen_schedule)
    bandwidth = result.topology.uplink(0).current_bandwidth()
    plan = plan_schedule(profile, bandwidth, single_worker_config.tcp)
    inputs = PerfModelInputs(
        c=profile.c,
        t=plan.start_times,
        e=plan.durations,
        fp=per_gradient_fwd_times(result.compute),
        total_bwd=result.compute.total_bwd,
    )
    analytic = evaluate_schedule(inputs).iteration_time
    # Same physics, different pull idealization: within 2x and ordered
    # sensibly (the analytic model is the optimistic bound here).
    assert analytic == pytest.approx(simulated, rel=1.0)
    assert simulated > 0.5 * analytic


def test_simulated_push_starts_respect_plan_ordering(single_worker_config):
    """Simulated pushes follow the plan's relative order during backward."""
    result = run_training(single_worker_config, prophet_factory())
    recs = {r.grad: r for r in result.gradient_records(0, iteration=4)}
    starts = np.array([recs[g].push_start for g in sorted(recs)])
    readies = np.array([recs[g].ready for g in sorted(recs)])
    # Constraint (7) in the simulator: no push before generation.
    assert np.all(starts >= readies - 1e-9)

    # Within one generation bucket the members become ready together, so
    # the online scheduler must push them in ascending priority order.
    # (Across buckets the online order may legally differ from the offline
    # plan: the link may still be busy when a new bucket flushes.)
    for bucket in result.gen_schedule.buckets:
        bucket_starts = [recs[g].push_start for g in sorted(bucket)]
        assert bucket_starts == sorted(bucket_starts)


def test_gpu_busy_time_equals_compute_time(single_worker_config):
    """Conservation: recorded GPU busy time == fwd+bwd compute exactly."""
    result = run_training(single_worker_config, prophet_factory())
    intervals = result.recorder.gpu_busy_intervals(0)
    busy = float(np.sum(intervals[:, 1] - intervals[:, 0]))
    expected = result.compute.compute_time * single_worker_config.n_iterations
    assert busy == pytest.approx(expected, rel=1e-9)


def test_channel_bytes_equal_twice_model_size(single_worker_config):
    """Conservation: channel carries push+pull = 2x model per iteration."""
    result = run_training(single_worker_config, prophet_factory())
    total = result.topology.uplink(0).total_bytes
    expected = 2 * result.gen_schedule.sizes.sum() * single_worker_config.n_iterations
    assert total == pytest.approx(expected, rel=1e-9)
