"""Unit tests for the Training Job Profiler."""

import numpy as np
import pytest

from repro.agg.kvstore import KVStore
from repro.core.profiler import JobProfile, JobProfiler
from repro.errors import ProfileError
from repro.models.compute import build_compute_profile


@pytest.fixture
def schedule(tiny_model, tiny_device):
    prof = build_compute_profile(tiny_model, tiny_device, batch_size=8)
    return KVStore().generation_schedule(prof)


class TestJobProfile:
    def test_from_generation_schedule(self, schedule):
        jp = JobProfile.from_generation_schedule(schedule)
        assert np.array_equal(jp.c, schedule.c)
        assert np.array_equal(jp.sizes, schedule.sizes)
        assert jp.iterations == 0
        assert jp.num_gradients == schedule.num_gradients

    def test_backward_span(self):
        jp = JobProfile(
            c=np.array([0.3, 0.2, 0.1]), sizes=np.ones(3), iterations=5
        )
        assert jp.backward_span == pytest.approx(0.2)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ProfileError):
            JobProfile(c=np.zeros(3), sizes=np.zeros(2), iterations=1)

    def test_empty_profile_raises(self):
        with pytest.raises(ProfileError):
            JobProfile(c=np.zeros(0), sizes=np.zeros(0), iterations=1)


class TestJobProfiler:
    def test_averages_over_iterations(self):
        profiler = JobProfiler(sizes=np.ones(2), min_iterations=2)
        profiler.observe(0, 0.2)
        profiler.observe(1, 0.1)
        profiler.end_iteration()
        profiler.observe(0, 0.4)
        profiler.observe(1, 0.3)
        profiler.end_iteration()
        assert profiler.ready
        profile = profiler.build()
        assert profile.c == pytest.approx([0.3, 0.2])
        assert profile.iterations == 2

    def test_partial_iterations_discarded(self):
        profiler = JobProfiler(sizes=np.ones(2), min_iterations=1)
        profiler.observe(0, 0.2)  # gradient 1 never observed
        profiler.end_iteration()
        assert profiler.iterations_observed == 0
        assert not profiler.ready

    def test_build_before_ready_raises(self):
        profiler = JobProfiler(sizes=np.ones(2), min_iterations=3)
        with pytest.raises(ProfileError):
            profiler.build()

    def test_double_observation_raises(self):
        profiler = JobProfiler(sizes=np.ones(2))
        profiler.observe(0, 0.1)
        with pytest.raises(ProfileError):
            profiler.observe(0, 0.2)

    def test_out_of_range_gradient_raises(self):
        profiler = JobProfiler(sizes=np.ones(2))
        with pytest.raises(ProfileError):
            profiler.observe(5, 0.1)

    def test_negative_time_raises(self):
        profiler = JobProfiler(sizes=np.ones(2))
        with pytest.raises(ProfileError):
            profiler.observe(0, -0.1)

    def test_invalid_constructor_args(self):
        with pytest.raises(ProfileError):
            JobProfiler(sizes=np.ones(0))
        with pytest.raises(ProfileError):
            JobProfiler(sizes=np.ones(2), min_iterations=0)


class TestTraceIO:
    def test_csv_roundtrip(self, schedule, tmp_path):
        profile = JobProfile.from_generation_schedule(schedule)
        path = profile.to_csv(tmp_path / "trace.csv")
        loaded = JobProfile.from_csv(path)
        assert np.allclose(loaded.c, profile.c)
        assert np.allclose(loaded.sizes, profile.sizes)
        assert loaded.iterations == profile.iterations

    def test_iterations_metadata_preserved(self, tmp_path):
        profile = JobProfile(
            c=np.array([0.2, 0.1]), sizes=np.array([1e6, 2e6]), iterations=50
        )
        loaded = JobProfile.from_csv(profile.to_csv(tmp_path / "t.csv"))
        assert loaded.iterations == 50

    def test_from_csv_rejects_gaps(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("grad,c_seconds,size_bytes\n0,0.1,100\n2,0.2,200\n")
        with pytest.raises(ProfileError):
            JobProfile.from_csv(path)

    def test_from_csv_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("grad,c_seconds,size_bytes\n")
        with pytest.raises(ProfileError):
            JobProfile.from_csv(path)

    def test_trace_profile_drives_prophet(self, schedule, tmp_path):
        """A profile loaded from disk is a drop-in Algorithm 1 input."""
        from repro.core.algorithm import plan_schedule
        from repro.net.tcp import TCPParams

        profile = JobProfile.from_generation_schedule(schedule)
        loaded = JobProfile.from_csv(profile.to_csv(tmp_path / "t.csv"))
        plan = plan_schedule(loaded, 1.25e8, TCPParams())
        assert plan.num_gradients == schedule.num_gradients
