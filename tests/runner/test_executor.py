"""Fan-out executor: job resolution, caching, and parallel == serial.

The parallel tests use a real registry model (``resnet18``) rather than
the conftest tiny model — spawn-started children import the package
fresh and never execute the test conftest, so only models registered by
the package itself exist there.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import run_strategies
from repro.quantities import Gbps
from repro.runner import ResultCache, RunSpec, fingerprint, resolve_jobs, run_grid
from repro.runner.executor import JOBS_ENV
from repro.workloads.presets import paper_config


def _config(seed: int = 0, **overrides):
    return paper_config(
        "resnet18",
        16,
        bandwidth=2 * Gbps,
        n_workers=2,
        n_iterations=4,
        seed=seed,
        record_gradients=False,
        **overrides,
    )


# ----------------------------------------------------------------------
# Job resolution
# ----------------------------------------------------------------------
def test_resolve_jobs_precedence(monkeypatch):
    monkeypatch.delenv(JOBS_ENV, raising=False)
    assert resolve_jobs() == 1
    monkeypatch.setenv(JOBS_ENV, "3")
    assert resolve_jobs() == 3
    assert resolve_jobs(2) == 2  # explicit argument wins


def test_resolve_jobs_rejects_garbage(monkeypatch):
    monkeypatch.setenv(JOBS_ENV, "many")
    with pytest.raises(ConfigurationError):
        resolve_jobs()
    with pytest.raises(ConfigurationError):
        resolve_jobs(0)


# ----------------------------------------------------------------------
# Caching semantics (inline path — no subprocesses)
# ----------------------------------------------------------------------
def test_cache_hit_returns_identical_result(tmp_path):
    spec = RunSpec(config=_config(), strategy="mxnet-fifo")
    store = ResultCache(tmp_path)

    cold = run_grid([spec], cache=store)
    assert store.misses == 1 and store.hits == 0

    warm = run_grid([spec], cache=store)
    assert store.hits == 1
    assert warm == cold


def test_cache_false_bypasses_store(tmp_path):
    spec = RunSpec(config=_config(), strategy="mxnet-fifo")
    run_grid([spec], cache=False, cache_dir=tmp_path)
    assert not list(tmp_path.rglob("*.json"))


def test_no_cache_env_disables(tmp_path, monkeypatch):
    from repro.runner.executor import NO_CACHE_ENV

    monkeypatch.setenv(NO_CACHE_ENV, "1")
    spec = RunSpec(config=_config(), strategy="mxnet-fifo")
    run_grid([spec], cache_dir=tmp_path)
    assert not list(tmp_path.rglob("*.json"))


def test_different_seeds_do_not_share_entries(tmp_path):
    store = ResultCache(tmp_path)
    specs = [
        RunSpec(config=_config(seed=0), strategy="mxnet-fifo"),
        RunSpec(config=_config(seed=1), strategy="mxnet-fifo"),
    ]
    assert fingerprint(specs[0]) != fingerprint(specs[1])
    results = run_grid(specs, cache=store)
    assert store.misses == 2
    assert results[0] != results[1]


def test_corrupted_cache_entry_falls_back_to_simulation(tmp_path):
    spec = RunSpec(config=_config(), strategy="mxnet-fifo")
    store = ResultCache(tmp_path)
    cold = run_grid([spec], cache=store)

    (entry,) = tmp_path.rglob("*.json")
    entry.write_text("garbage")

    again = run_grid([spec], cache=store)
    assert again == cold


# ----------------------------------------------------------------------
# Parallel == serial
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_parallel_grid_is_bit_identical_to_serial(tmp_path):
    configs = [_config(seed=0), _config(seed=1)]
    specs = [
        RunSpec(config=config, strategy=strategy)
        for config in configs
        for strategy in ("prophet", "mxnet-fifo")
    ]
    serial = run_grid(specs, jobs=1, cache=False)
    parallel = run_grid(specs, jobs=4, cache=False)
    assert parallel == serial


@pytest.mark.slow
def test_run_strategies_parallel_matches_serial(tmp_path):
    config = _config()
    serial = run_strategies(
        config, strategies=("prophet", "mxnet-fifo"), jobs=1, cache=False
    )
    parallel = run_strategies(
        config, strategies=("prophet", "mxnet-fifo"), jobs=4, cache=False
    )
    assert parallel.rates == serial.rates
    assert parallel.config == serial.config


@pytest.mark.slow
def test_parallel_run_populates_cache_for_serial_rerun(tmp_path):
    store = ResultCache(tmp_path)
    specs = [
        RunSpec(config=_config(seed=s), strategy="mxnet-fifo") for s in (0, 1)
    ]
    cold = run_grid(specs, jobs=2, cache=store)
    assert store.misses == 2

    warm = run_grid(specs, jobs=1, cache=store)
    assert store.hits == 2
    assert warm == cold
