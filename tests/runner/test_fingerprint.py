"""Fingerprint stability and sensitivity.

The cache key must be *stable* (same spec -> same key, across kwarg
spellings and process restarts) and *sensitive* (any knob that can change
the simulation's numbers -> different key).  Every sensitivity case here
corresponds to a real staleness bug the cache would otherwise serve.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, WorkerCrash
from repro.net.link import BandwidthSchedule
from repro.quantities import Gbps, MB
from repro.runner import RunSpec, canonical, fingerprint
from repro.workloads.presets import paper_config


@pytest.fixture
def spec() -> RunSpec:
    config = paper_config("resnet18", 16, n_iterations=4, seed=3)
    return RunSpec(config=config, strategy="prophet")


def test_fingerprint_is_stable(spec):
    assert fingerprint(spec) == fingerprint(spec)
    clone = RunSpec(config=spec.config, strategy="prophet")
    assert fingerprint(clone) == fingerprint(spec)


def test_kwarg_spelling_does_not_matter(spec):
    as_dict = RunSpec(
        config=spec.config,
        strategy="p3",
        strategy_kwargs={"partition_size": 2 * MB},
    )
    as_pairs = RunSpec(
        config=spec.config,
        strategy="p3",
        strategy_kwargs=(("partition_size", 2 * MB),),
    )
    assert fingerprint(as_dict) == fingerprint(as_pairs)


@pytest.mark.parametrize(
    "mutate",
    [
        lambda c: replace(c, bandwidth=5 * Gbps),
        lambda c: replace(c, batch_size=32),
        lambda c: replace(c, n_iterations=6),
        lambda c: replace(c, seed=4),
        lambda c: replace(c, jitter_std=0.1),
        lambda c: replace(
            c,
            faults=FaultPlan(
                crashes=(WorkerCrash(worker=0, at=1.0, restart_after=0.5),)
            ),
        ),
    ],
    ids=["bandwidth", "batch", "iterations", "seed", "jitter", "fault-plan"],
)
def test_config_changes_invalidate(spec, mutate):
    changed = RunSpec(config=mutate(spec.config), strategy=spec.strategy)
    assert fingerprint(changed) != fingerprint(spec)


def test_strategy_and_kwargs_and_skip_invalidate(spec):
    fp = fingerprint(spec)
    assert fingerprint(RunSpec(config=spec.config, strategy="fifo")) != fp
    assert (
        fingerprint(
            RunSpec(
                config=spec.config,
                strategy="prophet",
                strategy_kwargs={"round_trip_factor": 2.0},
            )
        )
        != fp
    )
    assert fingerprint(RunSpec(config=spec.config, strategy="prophet", skip=1)) != fp


def test_version_invalidates(spec, monkeypatch):
    import repro

    fp = fingerprint(spec)
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    assert fingerprint(spec) != fp


def test_bandwidth_schedule_fingerprints(spec):
    sched_a = BandwidthSchedule(((0.0, 3 * Gbps), (2.0, 1 * Gbps)))
    sched_b = BandwidthSchedule(((0.0, 3 * Gbps), (2.0, 2 * Gbps)))
    fp_a = fingerprint(
        RunSpec(config=replace(spec.config, bandwidth=sched_a), strategy="prophet")
    )
    fp_b = fingerprint(
        RunSpec(config=replace(spec.config, bandwidth=sched_b), strategy="prophet")
    )
    assert fp_a != fp_b
    fp_a2 = fingerprint(
        RunSpec(config=replace(spec.config, bandwidth=sched_a), strategy="prophet")
    )
    assert fp_a == fp_a2


def test_callables_are_rejected():
    with pytest.raises(ConfigurationError):
        canonical(lambda: None)
