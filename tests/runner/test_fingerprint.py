"""Fingerprint stability and sensitivity.

The cache key must be *stable* (same spec -> same key, across kwarg
spellings and process restarts) and *sensitive* (any knob that can change
the simulation's numbers -> different key).  Every sensitivity case here
corresponds to a real staleness bug the cache would otherwise serve.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, WorkerCrash
from repro.net.link import BandwidthSchedule
from repro.quantities import Gbps, MB
from repro.runner import RunSpec, canonical, fingerprint
from repro.workloads.presets import paper_config


@pytest.fixture
def spec() -> RunSpec:
    config = paper_config("resnet18", 16, n_iterations=4, seed=3)
    return RunSpec(config=config, strategy="prophet")


def test_fingerprint_is_stable(spec):
    assert fingerprint(spec) == fingerprint(spec)
    clone = RunSpec(config=spec.config, strategy="prophet")
    assert fingerprint(clone) == fingerprint(spec)


def test_kwarg_spelling_does_not_matter(spec):
    as_dict = RunSpec(
        config=spec.config,
        strategy="p3",
        strategy_kwargs={"partition_size": 2 * MB},
    )
    as_pairs = RunSpec(
        config=spec.config,
        strategy="p3",
        strategy_kwargs=(("partition_size", 2 * MB),),
    )
    assert fingerprint(as_dict) == fingerprint(as_pairs)


@pytest.mark.parametrize(
    "mutate",
    [
        lambda c: replace(c, bandwidth=5 * Gbps),
        lambda c: replace(c, batch_size=32),
        lambda c: replace(c, n_iterations=6),
        lambda c: replace(c, seed=4),
        lambda c: replace(c, jitter_std=0.1),
        lambda c: replace(
            c,
            faults=FaultPlan(
                crashes=(WorkerCrash(worker=0, at=1.0, restart_after=0.5),)
            ),
        ),
    ],
    ids=["bandwidth", "batch", "iterations", "seed", "jitter", "fault-plan"],
)
def test_config_changes_invalidate(spec, mutate):
    changed = RunSpec(config=mutate(spec.config), strategy=spec.strategy)
    assert fingerprint(changed) != fingerprint(spec)


def test_strategy_and_kwargs_and_skip_invalidate(spec):
    fp = fingerprint(spec)
    assert fingerprint(RunSpec(config=spec.config, strategy="fifo")) != fp
    assert (
        fingerprint(
            RunSpec(
                config=spec.config,
                strategy="prophet",
                strategy_kwargs={"round_trip_factor": 2.0},
            )
        )
        != fp
    )
    assert fingerprint(RunSpec(config=spec.config, strategy="prophet", skip=1)) != fp


def test_version_invalidates(spec, monkeypatch):
    import repro

    fp = fingerprint(spec)
    monkeypatch.setattr(repro, "__version__", "0.0.0-test")
    assert fingerprint(spec) != fp


def test_bandwidth_schedule_fingerprints(spec):
    sched_a = BandwidthSchedule(((0.0, 3 * Gbps), (2.0, 1 * Gbps)))
    sched_b = BandwidthSchedule(((0.0, 3 * Gbps), (2.0, 2 * Gbps)))
    fp_a = fingerprint(
        RunSpec(config=replace(spec.config, bandwidth=sched_a), strategy="prophet")
    )
    fp_b = fingerprint(
        RunSpec(config=replace(spec.config, bandwidth=sched_b), strategy="prophet")
    )
    assert fp_a != fp_b
    fp_a2 = fingerprint(
        RunSpec(config=replace(spec.config, bandwidth=sched_a), strategy="prophet")
    )
    assert fp_a == fp_a2


def test_callables_are_rejected():
    with pytest.raises(ConfigurationError):
        canonical(lambda: None)


class TestEngineEnvSensitivity:
    """REPRO_NO_FASTFORWARD changes event interleavings mid-run, so it is
    part of the cache key — a result computed with fast-forward disabled
    must never be served to an enabled run (or vice versa)."""

    def test_no_fastforward_flips_the_fingerprint(self, spec, monkeypatch):
        from repro.sim.fastforward import NO_FASTFORWARD_ENV

        monkeypatch.delenv(NO_FASTFORWARD_ENV, raising=False)
        fp_default = fingerprint(spec)
        monkeypatch.setenv(NO_FASTFORWARD_ENV, "1")
        assert fingerprint(spec) != fp_default
        monkeypatch.delenv(NO_FASTFORWARD_ENV)
        assert fingerprint(spec) == fp_default

    def test_env_payload_lists_every_engine_var(self, monkeypatch):
        from repro.runner import ENGINE_ENV_VARS, engine_env_payload
        from repro.sim.fastforward import NO_FASTFORWARD_ENV

        assert NO_FASTFORWARD_ENV in ENGINE_ENV_VARS
        monkeypatch.setenv(NO_FASTFORWARD_ENV, "1")
        payload = engine_env_payload()
        assert set(payload) == set(ENGINE_ENV_VARS)
        assert payload[NO_FASTFORWARD_ENV] is True
        monkeypatch.delenv(NO_FASTFORWARD_ENV)
        assert engine_env_payload()[NO_FASTFORWARD_ENV] is False


class TestFleetFingerprint:
    def _spec(self, **overrides):
        from repro.fleet import FleetSpec

        defaults = dict(n_jobs=4, policy="fair", strategies=("prophet",))
        defaults.update(overrides)
        return FleetSpec(**defaults)

    def test_stable_and_sensitive(self):
        from repro.runner import fleet_fingerprint

        fp = fleet_fingerprint(self._spec())
        assert fleet_fingerprint(self._spec()) == fp
        assert fleet_fingerprint(self._spec(seed=1)) != fp
        assert fleet_fingerprint(self._spec(policy="fifo")) != fp
        assert fleet_fingerprint(self._spec(n_jobs=5)) != fp
        assert (
            fleet_fingerprint(self._spec(strategies=("prophet", "mg-wfbp"))) != fp
        )

    def test_kind_tag_separates_fleet_from_single_runs(self):
        from repro.runner import fleet_key_payload

        payload = fleet_key_payload(self._spec())
        assert payload["kind"] == "fleet"
        assert "env" in payload

    def test_engine_env_flips_fleet_fingerprint(self, monkeypatch):
        from repro.runner import fleet_fingerprint
        from repro.sim.fastforward import NO_FASTFORWARD_ENV

        monkeypatch.delenv(NO_FASTFORWARD_ENV, raising=False)
        fp = fleet_fingerprint(self._spec())
        monkeypatch.setenv(NO_FASTFORWARD_ENV, "1")
        assert fleet_fingerprint(self._spec()) != fp
