"""Strategy registry: preset coverage, registration rules, resolution."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.quantities import MB
from repro.runner import available_strategies, build_factory, register_strategy
from repro.sched.p3 import P3Scheduler


def test_presets_are_registered():
    names = available_strategies()
    for expected in ("mxnet-fifo", "fifo", "p3", "bytescheduler", "prophet",
                     "mg-wfbp"):
        assert expected in names


def test_unknown_strategy_is_a_configuration_error():
    with pytest.raises(ConfigurationError, match="unknown strategy"):
        build_factory("does-not-exist")


def test_kwargs_reach_the_builder():
    factory = build_factory("p3", {"partition_size": 2 * MB})
    # The P3 factory ignores its worker context, so none is needed here.
    scheduler = factory(None)
    assert isinstance(scheduler, P3Scheduler)
    assert scheduler.partition_size == 2 * MB


def test_duplicate_registration_requires_overwrite():
    from repro.workloads.presets import fifo_factory

    with pytest.raises(ConfigurationError, match="already registered"):
        register_strategy("fifo", fifo_factory)
    # Explicit overwrite is allowed (used by extensions/tests).
    register_strategy("fifo", fifo_factory, overwrite=True)


def test_empty_name_rejected():
    with pytest.raises(ConfigurationError):
        register_strategy("", lambda: None)
