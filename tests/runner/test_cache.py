"""Result-cache behaviour: round-trips, corruption tolerance, controls."""

from __future__ import annotations

import json
from pathlib import Path

from repro.runner import ResultCache, RunResult, default_cache_dir
from repro.runner.cache import CACHE_DIR_ENV

FP = "ab" + "0" * 62


def _result() -> RunResult:
    return RunResult(
        training_rate=70.5,
        per_worker_rates=(70.0, 71.0),
        mean_iteration_s=0.9,
        gpu_utilization=0.8,
        throughput_bytes_per_s=1.2e9,
        end_time=12.5,
        fault_stats=(("crashes", 1), ("retries", 3)),
    )


def test_roundtrip_and_counters(tmp_path: Path):
    store = ResultCache(tmp_path)
    assert store.get(FP) is None
    assert store.misses == 1

    path = store.put(FP, _result())
    assert path.is_file()
    assert path.parent.name == FP[:2]

    got = store.get(FP)
    assert got == _result()
    assert store.hits == 1


def test_roundtrip_without_fault_stats(tmp_path: Path):
    store = ResultCache(tmp_path)
    result = RunResult(
        training_rate=1.0,
        per_worker_rates=(1.0,),
        mean_iteration_s=1.0,
        gpu_utilization=0.5,
        throughput_bytes_per_s=1.0,
        end_time=1.0,
    )
    store.put(FP, result)
    assert store.get(FP) == result


def test_corrupted_entry_is_discarded_not_fatal(tmp_path: Path):
    store = ResultCache(tmp_path)
    path = store.put(FP, _result())

    path.write_text("{ not json")
    assert store.get(FP) is None
    assert not path.exists(), "corrupt entry should be unlinked"

    # Valid JSON but wrong schema.
    store.put(FP, _result())
    payload = json.loads(path.read_text())
    del payload["result"]["training_rate"]
    path.write_text(json.dumps(payload))
    assert store.get(FP) is None
    assert not path.exists()

    # Valid payload filed under the wrong fingerprint.
    store.put(FP, _result())
    payload = json.loads(path.read_text())
    payload["fingerprint"] = "f" * 64
    path.write_text(json.dumps(payload))
    assert store.get(FP) is None
    assert not path.exists()


def test_stats_and_clear(tmp_path: Path):
    store = ResultCache(tmp_path)
    other = "cd" + "1" * 62
    store.put(FP, _result())
    store.put(other, _result())

    stats = store.stats()
    assert stats.entries == 2
    assert stats.total_bytes > 0
    assert stats.root == tmp_path

    assert store.clear() == 2
    assert store.stats().entries == 0
    # Clearing an already-empty (or never-created) cache is fine.
    assert ResultCache(tmp_path / "nonexistent").clear() == 0


def test_default_dir_env_override(tmp_path: Path, monkeypatch):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "alt"))
    assert default_cache_dir() == tmp_path / "alt"
    monkeypatch.delenv(CACHE_DIR_ENV)
    assert default_cache_dir() == Path.home() / ".cache" / "repro" / "results"
