"""Unit tests for the cProfile harness (``repro profile``)."""

import os
import pstats
import sys
import types

import pytest

from repro.errors import ConfigurationError
from repro.profiling import profile_experiment
from repro.runner import JOBS_ENV, NO_CACHE_ENV


@pytest.fixture
def stub_experiment(monkeypatch):
    """Install a tiny fake experiment module so the harness runs in ms."""

    def busy_work():
        return sum(i * i for i in range(2_000))

    module = types.ModuleType("repro.experiments.stubprof")
    module.main = lambda: busy_work()
    monkeypatch.setitem(sys.modules, "repro.experiments.stubprof", module)
    # The harness mutates the runner env knobs; keep the test hermetic.
    monkeypatch.delenv(JOBS_ENV, raising=False)
    monkeypatch.delenv(NO_CACHE_ENV, raising=False)
    return "stubprof"


class TestProfileExperiment:
    def test_report_fields(self, stub_experiment):
        report = profile_experiment(stub_experiment, top=5)
        assert report.experiment == stub_experiment
        assert report.total_calls > 0
        assert report.total_seconds >= 0.0
        assert "Ordered by: cumulative time" in report.text
        assert report.dump_path is None

    def test_forces_serial_and_no_cache(self, stub_experiment):
        profile_experiment(stub_experiment)
        assert os.environ[JOBS_ENV] == "1"
        assert os.environ[NO_CACHE_ENV] == "1"

    def test_use_cache_leaves_cache_enabled(self, stub_experiment):
        profile_experiment(stub_experiment, use_cache=True)
        assert os.environ[JOBS_ENV] == "1"
        assert NO_CACHE_ENV not in os.environ

    def test_sort_key_reaches_report(self, stub_experiment):
        report = profile_experiment(stub_experiment, sort="tottime")
        assert "Ordered by: internal time" in report.text

    def test_dump_is_loadable_by_pstats(self, stub_experiment, tmp_path):
        out = tmp_path / "stub.prof"
        report = profile_experiment(stub_experiment, dump=str(out))
        assert report.dump_path == str(out)
        stats = pstats.Stats(str(out))
        assert stats.total_calls > 0

    def test_invalid_sort_raises(self, stub_experiment):
        with pytest.raises(ConfigurationError):
            profile_experiment(stub_experiment, sort="bogus")

    def test_nonpositive_top_raises(self, stub_experiment):
        with pytest.raises(ConfigurationError):
            profile_experiment(stub_experiment, top=0)


@pytest.fixture
def shape_experiment(monkeypatch):
    """Fake experiment whose main() records the topology it was given."""
    calls: list[dict] = []

    def main(n_workers=3, backend="ps", **kwargs):
        calls.append({"n_workers": n_workers, "backend": backend, **kwargs})

    module = types.ModuleType("repro.experiments.shapeprof")
    module.main = main
    monkeypatch.setitem(sys.modules, "repro.experiments.shapeprof", module)
    monkeypatch.delenv(JOBS_ENV, raising=False)
    monkeypatch.delenv(NO_CACHE_ENV, raising=False)
    return "shapeprof", calls


class TestTopologyPassthrough:
    def test_overrides_reach_the_entry_point(self, shape_experiment):
        name, calls = shape_experiment
        profile_experiment(
            name,
            overrides={"n_workers": 64, "backend": "allreduce", "n_servers": 4},
        )
        assert calls == [
            {"n_workers": 64, "backend": "allreduce", "n_servers": 4}
        ]

    def test_defaults_untouched_without_overrides(self, shape_experiment):
        name, calls = shape_experiment
        profile_experiment(name)
        assert calls == [{"n_workers": 3, "backend": "ps"}]

    def test_unsupported_override_is_a_hard_error(self, stub_experiment):
        # stubprof's main() takes no arguments at all — asking for a
        # fleet shape it cannot honour must fail loudly, not profile
        # the wrong topology.
        with pytest.raises(ConfigurationError, match="n_workers"):
            profile_experiment(stub_experiment, overrides={"n_workers": 64})

    def test_cli_flags_map_to_override_names(self, shape_experiment, monkeypatch):
        from repro import cli

        name, calls = shape_experiment
        monkeypatch.setattr(cli, "EXPERIMENTS", (name,))
        rc = cli.main(
            [
                "profile",
                name,
                "--workers",
                "64",
                "--backend",
                "allreduce",
                "--n-servers",
                "4",
            ]
        )
        assert rc == 0
        assert calls == [
            {"n_workers": 64, "backend": "allreduce", "n_servers": 4}
        ]
