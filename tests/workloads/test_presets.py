"""Unit tests for workload presets and scheduler factories."""

import pytest

from repro.config import WorkerContext
from repro.core.profiler import JobProfile
from repro.net.link import BandwidthSchedule, Link
from repro.net.monitor import BandwidthMonitor
from repro.net.tcp import TCPParams
from repro.quantities import Gbps, MB
from repro.sched.bytescheduler import ByteSchedulerScheduler
from repro.sched.fifo import FIFOScheduler
from repro.sched.p3 import P3Scheduler
from repro.sched.prophet_sched import ProphetScheduler
from repro.sim.engine import Engine
from repro.sim.rng import make_rng
from repro.workloads.presets import (
    MODEL_EFFICIENCY,
    PAPER_TCP,
    STRATEGY_FACTORIES,
    bytescheduler_factory,
    fifo_factory,
    p3_factory,
    paper_config,
    paper_device,
    prophet_factory,
)

import numpy as np


@pytest.fixture
def ctx():
    engine = Engine()
    link = Link(engine, BandwidthSchedule.constant(1 * Gbps), TCPParams())
    monitor = BandwidthMonitor(engine, link)
    profile = JobProfile(c=np.array([0.2, 0.1]), sizes=np.array([1e6, 2e6]),
                         iterations=0)
    return WorkerContext(
        worker_id=0, monitor=monitor, oracle_profile=profile,
        tcp=PAPER_TCP, rng=make_rng(0),
    )


def test_paper_device_uses_calibrated_efficiency():
    dev = paper_device("resnet50")
    assert dev.efficiency == MODEL_EFFICIENCY["resnet50"]
    assert paper_device("unknown-model").efficiency == 0.20


def test_paper_config_applies_calibration():
    cfg = paper_config("resnet18", 32, bandwidth=2 * Gbps, n_workers=5)
    assert cfg.model == "resnet18"
    assert cfg.device.efficiency == MODEL_EFFICIENCY["resnet18"]
    assert cfg.tcp == PAPER_TCP
    assert cfg.n_workers == 5


def test_paper_config_overrides():
    cfg = paper_config("resnet50", 64, duplex=True, jitter_std=0.0)
    assert cfg.duplex is True
    assert cfg.jitter_std == 0.0


def test_factories_build_expected_types(ctx):
    assert isinstance(fifo_factory()(ctx), FIFOScheduler)
    assert isinstance(p3_factory()(ctx), P3Scheduler)
    assert isinstance(bytescheduler_factory()(ctx), ByteSchedulerScheduler)
    assert isinstance(prophet_factory()(ctx), ProphetScheduler)


def test_bytescheduler_paper_defaults(ctx):
    s = bytescheduler_factory()(ctx)
    assert s.partition_size == 4 * MB
    assert s.credit == 12 * MB  # "3 times partition size" (paper Fig. 5)
    assert s.auto_tune is False


def test_prophet_factory_wires_monitor(ctx):
    s = prophet_factory()(ctx)
    assert s.active  # oracle profile injected
    assert s._bandwidth_provider() == ctx.monitor.bandwidth


def test_prophet_factory_online_mode(ctx):
    s = prophet_factory(oracle_profile=False, profile_iterations=7)(ctx)
    assert not s.active
    assert s.profile_iterations == 7


def test_strategy_factories_complete():
    assert set(STRATEGY_FACTORIES) == {
        "mxnet-fifo", "p3", "bytescheduler", "prophet",
    }


def test_factories_produce_fresh_instances(ctx):
    f = prophet_factory()
    assert f(ctx) is not f(ctx)
