"""Unit tests for utilization curves."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.utilization import busy_curve, mean_utilization, windowed_utilization


def test_busy_curve_empty():
    times, cum = busy_curve(np.empty((0, 2)))
    assert list(times) == [0.0]
    assert list(cum) == [0.0]


def test_busy_curve_single_interval():
    times, cum = busy_curve(np.array([[1.0, 3.0]]))
    assert np.interp(0.5, times, cum) == 0.0
    assert np.interp(2.0, times, cum) == pytest.approx(1.0)
    assert np.interp(4.0, times, cum, right=cum[-1]) == pytest.approx(2.0)


def test_busy_curve_merges_overlaps():
    intervals = np.array([[1.0, 3.0], [2.0, 4.0]])
    times, cum = busy_curve(intervals)
    assert cum[-1] == pytest.approx(3.0)  # union length, not sum


def test_windowed_utilization_full_busy():
    intervals = np.array([[0.0, 10.0]])
    util = windowed_utilization(intervals, np.array([5.0, 10.0]), window=1.0)
    assert np.allclose(util, 1.0)


def test_windowed_utilization_alternating():
    # Busy 0-1, idle 1-2, busy 2-3, ...
    intervals = np.array([[float(i), float(i) + 1.0] for i in range(0, 10, 2)])
    util = windowed_utilization(intervals, np.array([2.0, 4.0, 10.0]), window=2.0)
    assert np.allclose(util, 0.5)


def test_windowed_utilization_clipped_early_window():
    intervals = np.array([[0.0, 0.5]])
    util = windowed_utilization(intervals, np.array([0.5]), window=10.0)
    assert util[0] == pytest.approx(1.0)  # window truncated at t=0


def test_mean_utilization():
    intervals = np.array([[0.0, 1.0], [2.0, 3.0]])
    assert mean_utilization(intervals, 0.0, 4.0) == pytest.approx(0.5)
    assert mean_utilization(intervals, 0.0, 1.0) == pytest.approx(1.0)
    assert mean_utilization(intervals, 1.0, 2.0) == pytest.approx(0.0)


def test_invalid_args_raise():
    with pytest.raises(ConfigurationError):
        windowed_utilization(np.empty((0, 2)), np.array([1.0]), window=0.0)
    with pytest.raises(ConfigurationError):
        mean_utilization(np.empty((0, 2)), 1.0, 1.0)
