"""Unit tests for throughput curves."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.throughput import bytes_curve, windowed_throughput
from repro.net.link import TransferRecord


def test_bytes_curve_empty():
    times, cum = bytes_curve([])
    assert list(times) == [0.0]
    assert list(cum) == [0.0]


def test_bytes_curve_single_record():
    recs = [TransferRecord(start=1.0, end=3.0, nbytes=200.0)]
    times, cum = bytes_curve(recs)
    assert np.interp(1.0, times, cum) == pytest.approx(0.0)
    assert np.interp(2.0, times, cum) == pytest.approx(100.0)
    assert np.interp(3.0, times, cum) == pytest.approx(200.0)


def test_bytes_curve_unsorted_records():
    recs = [
        TransferRecord(start=5.0, end=6.0, nbytes=10.0),
        TransferRecord(start=1.0, end=2.0, nbytes=20.0),
    ]
    times, cum = bytes_curve(recs)
    assert cum[-1] == pytest.approx(30.0)
    assert list(times) == sorted(times)


def test_windowed_throughput_constant_stream():
    recs = [TransferRecord(start=float(i), end=float(i) + 1.0, nbytes=100.0)
            for i in range(10)]
    thr = windowed_throughput(recs, np.array([5.0, 8.0]), window=2.0)
    assert np.allclose(thr, 100.0)


def test_windowed_throughput_idle_window_is_zero():
    recs = [TransferRecord(start=0.0, end=1.0, nbytes=100.0)]
    thr = windowed_throughput(recs, np.array([5.0]), window=1.0)
    assert thr[0] == pytest.approx(0.0)


def test_throughput_record_property():
    rec = TransferRecord(start=0.0, end=2.0, nbytes=100.0)
    assert rec.throughput == pytest.approx(50.0)
    assert rec.duration == pytest.approx(2.0)


def test_invalid_window_raises():
    with pytest.raises(ConfigurationError):
        windowed_throughput([], np.array([1.0]), window=0.0)
