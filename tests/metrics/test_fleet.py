"""Unit tests for the fleet-level metrics (fairness, goodput, tails)."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.job import JobRecord
from repro.metrics.fleet import (
    fleet_goodput,
    fleet_makespan,
    iteration_percentile,
    jain_index,
    queueing_delays,
    summarize_fleet,
)


def _record(name, arrival=0.0, placed=0.0, finished=10.0, rate=50.0,
            samples=100.0, spans=(1.0, 1.0)):
    return JobRecord(
        name=name,
        user=name,
        strategy="prophet",
        n_workers=2,
        arrival=arrival,
        placed_at=placed,
        finished_at=finished,
        samples=samples,
        training_rate=rate,
        iteration_s=tuple(spans),
    )


class TestJainIndex:
    def test_equal_rates_are_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0]) == 1.0

    def test_degenerate_inputs_default_to_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_skew_lowers_the_index(self):
        # One job hogging everything: J = 1/n.
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
        assert jain_index([3.0, 1.0]) < 1.0


class TestFleetAggregates:
    def test_makespan_spans_first_arrival_to_last_finish(self):
        records = [
            _record("a", arrival=1.0, finished=6.0),
            _record("b", arrival=2.0, finished=9.0),
        ]
        assert fleet_makespan(records) == 8.0

    def test_goodput_is_samples_over_makespan(self):
        records = [
            _record("a", samples=100.0, finished=10.0),
            _record("b", samples=60.0, finished=10.0),
        ]
        assert fleet_goodput(records) == pytest.approx(16.0)

    def test_percentiles_pool_all_workers_spans(self):
        records = [
            _record("a", spans=(1.0, 1.0)),
            _record("b", spans=(3.0, 3.0)),
        ]
        assert iteration_percentile(records, 50.0) == pytest.approx(2.0)
        assert iteration_percentile(records, 100.0) == pytest.approx(3.0)

    def test_queueing_delays_per_record(self):
        records = [
            _record("a", arrival=0.0, placed=0.0),
            _record("b", arrival=1.0, placed=2.5),
        ]
        assert list(queueing_delays(records)) == [0.0, 1.5]

    def test_summary_keys(self):
        summary = summarize_fleet([_record("a"), _record("b", placed=1.0)])
        assert set(summary) == {
            "n_jobs",
            "makespan_s",
            "goodput_samples_per_s",
            "p50_iteration_s",
            "p99_iteration_s",
            "jain_fairness",
            "mean_queueing_delay_s",
            "max_queueing_delay_s",
        }
        assert summary["n_jobs"] == 2
        assert summary["max_queueing_delay_s"] == 1.0

    def test_empty_records_raise(self):
        for fn in (fleet_makespan, fleet_goodput, summarize_fleet):
            with pytest.raises(ConfigurationError):
                fn([])
