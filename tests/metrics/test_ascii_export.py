"""Unit tests for ASCII timelines and result export."""

import json

import pytest

from repro.cluster.trainer import run_training
from repro.errors import ConfigurationError
from repro.metrics.ascii_timeline import (
    render_channel_timeline,
    render_gradient_waterfall,
)
from repro.metrics.export import (
    gradient_records_rows,
    result_summary_dict,
    write_csv,
    write_json,
)
from repro.metrics.timeline import GradientRecord
from repro.net.link import TransferRecord
from repro.workloads.presets import prophet_factory


@pytest.fixture(scope="module")
def result(request):
    tiny_config = request.getfixturevalue("tiny_config")
    return run_training(tiny_config, prophet_factory())


@pytest.fixture(scope="module")
def tiny_config():
    # Module-scoped copy of the conftest fixture (function-scoped there).
    from tests.conftest import TINY_MODEL_NAME
    from repro.agg.policies import ExplicitGroupsPolicy
    from repro.config import TrainingConfig
    from repro.models.device import DeviceSpec
    from repro.net.tcp import TCPParams
    from repro.quantities import Gbps

    return TrainingConfig(
        model=TINY_MODEL_NAME,
        batch_size=8,
        n_workers=2,
        n_iterations=6,
        bandwidth=1 * Gbps,
        tcp=TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=0.8),
        device=DeviceSpec(name="test-gpu", peak_flops=4e12, efficiency=0.25),
        agg_policy=ExplicitGroupsPolicy(((5, 6, 7), (3, 4), (2,), (0, 1))),
        seed=7,
        jitter_std=0.01,
    )


class TestChannelTimeline:
    def test_renders_fixed_width(self, result):
        recs = result.topology.uplink(0).records
        out = render_channel_timeline(recs, 0.0, result.end_time, width=60)
        lines = out.splitlines()
        assert len(lines[1]) == 60
        assert set(lines[1]) <= {"#", "=", "."}
        assert "#" in lines[1] and "=" in lines[1]

    def test_idle_window_all_dots(self):
        recs = [TransferRecord(0.0, 0.1, 100.0, ("push", 0))]
        out = render_channel_timeline(recs, 10.0, 11.0, width=20)
        assert set(out.splitlines()[1]) == {"."}

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            render_channel_timeline([], 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            render_channel_timeline([], 0.0, 1.0, width=5)


class TestGradientWaterfall:
    def test_renders_rows_in_priority_order(self, result):
        recs = result.gradient_records(worker=0, iteration=3)
        out = render_gradient_waterfall(recs, width=40, max_rows=8)
        lines = out.splitlines()[1:]
        grads = [int(line.split()[0][1:]) for line in lines]
        assert grads == sorted(grads)
        assert all("|" in line for line in lines)

    def test_no_records_raises(self):
        with pytest.raises(ConfigurationError):
            render_gradient_waterfall([])

    def test_incomplete_records_skipped(self):
        recs = [GradientRecord(worker=0, iteration=0, grad=0)]  # all NaN
        with pytest.raises(ConfigurationError):
            render_gradient_waterfall(recs)


class TestExport:
    def test_summary_dict_is_json_safe(self, result):
        data = result_summary_dict(result, skip=1)
        json.dumps(data)  # must not raise
        assert data["model"] == "tiny-test-model"
        assert data["training_rate"] > 0
        assert data["sync_mode"] == "bsp"

    def test_gradient_rows_nan_to_none(self, result):
        rows = gradient_records_rows(result, worker=0, iteration=2)
        assert rows
        for row in rows:
            json.dumps(row)
            assert row["ready"] is not None

    def test_write_csv_roundtrip(self, result, tmp_path):
        rows = gradient_records_rows(result, worker=0, iteration=2)
        path = write_csv(rows, tmp_path / "grads.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0].split(",")[:3] == ["worker", "iteration", "grad"]
        assert len(lines) == len(rows) + 1

    def test_write_csv_rejects_empty_and_ragged(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_csv([], tmp_path / "x.csv")
        with pytest.raises(ConfigurationError):
            write_csv([{"a": 1}, {"b": 2}], tmp_path / "x.csv")

    def test_write_json(self, result, tmp_path):
        path = write_json(result_summary_dict(result, skip=1), tmp_path / "s.json")
        loaded = json.loads(path.read_text())
        assert loaded["n_workers"] == 2
