"""Unit tests for the recorder and table formatting."""

import numpy as np

from repro.metrics.report import format_table
from repro.metrics.timeline import Recorder


class TestRecorder:
    def test_gpu_intervals_filtered_and_sorted(self):
        rec = Recorder()
        rec.gpu_busy(0, 0, "fwd", 2.0, 3.0)
        rec.gpu_busy(0, 0, "bwd", 0.0, 1.0)
        rec.gpu_busy(1, 0, "fwd", 5.0, 6.0)
        spans = rec.gpu_busy_intervals(0)
        assert spans.shape == (2, 2)
        assert spans[0][0] == 0.0

    def test_zero_length_interval_dropped(self):
        rec = Recorder()
        rec.gpu_busy(0, 0, "fwd", 1.0, 1.0)
        assert rec.gpu_busy_intervals(0).shape == (0, 2)

    def test_iteration_records_sorted(self):
        rec = Recorder()
        r1 = rec.iteration_record(0, 1)
        r0 = rec.iteration_record(0, 0)
        r1.fwd_start, r0.fwd_start = 1.0, 0.0
        recs = rec.worker_iterations(0)
        assert [r.iteration for r in recs] == [0, 1]

    def test_gradient_records_created_once(self):
        rec = Recorder()
        a = rec.gradient(0, 0, 5)
        b = rec.gradient(0, 0, 5)
        assert a is b

    def test_gradient_recording_disabled(self):
        rec = Recorder(record_gradients=False)
        assert rec.gradient(0, 0, 5) is None
        assert rec.gradient_records() == []

    def test_gradient_record_derived_times(self):
        rec = Recorder()
        g = rec.gradient(0, 0, 3)
        g.ready, g.push_start, g.push_end = 1.0, 1.2, 1.5
        assert np.isclose(g.wait_time, 0.2)
        assert np.isclose(g.transfer_time, 0.3)

    def test_gradient_records_filters(self):
        rec = Recorder()
        rec.gradient(0, 0, 1)
        rec.gradient(0, 1, 2)
        rec.gradient(1, 0, 3)
        assert len(rec.gradient_records(worker=0)) == 2
        assert len(rec.gradient_records(worker=0, iteration=1)) == 1
        assert len(rec.gradient_records()) == 3


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["xyz", 3]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.50" in out  # float formatting
        assert "xyz" in out

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out
