"""Unit tests for unit helpers, configs, and the error hierarchy."""

import pytest

from repro import errors
from repro.config import TrainingConfig
from repro.errors import ConfigurationError
from repro.quantities import (
    GB,
    Gbps,
    KB,
    MB,
    Mbps,
    fmt_bandwidth,
    fmt_bytes,
    fmt_seconds,
    ms,
    to_Gbps,
    to_MB,
    to_Mbps,
    to_ms,
    us,
)


class TestQuantities:
    def test_data_units_binary(self):
        assert KB == 1024
        assert MB == 1024**2
        assert GB == 1024**3

    def test_bandwidth_units_decimal_bits(self):
        assert 1 * Gbps == 1e9 / 8
        assert 1 * Mbps == 1e6 / 8

    def test_roundtrips(self):
        assert to_MB(5 * MB) == 5.0
        assert to_ms(5 * ms) == pytest.approx(5.0)
        assert to_Gbps(2 * Gbps) == pytest.approx(2.0)
        assert to_Mbps(500 * Mbps) == pytest.approx(500.0)

    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512 B"
        assert fmt_bytes(9.8 * MB) == "9.8 MB"
        assert fmt_bytes(2.5 * GB) == "2.5 GB"

    def test_fmt_seconds(self):
        assert fmt_seconds(5 * us) == "5.0 us"
        assert fmt_seconds(12.3 * ms) == "12.3 ms"
        assert fmt_seconds(2.5) == "2.50 s"

    def test_fmt_bandwidth(self):
        assert fmt_bandwidth(3 * Gbps) == "3.00 Gbps"
        assert fmt_bandwidth(500 * Mbps) == "500.0 Mbps"


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(batch_size=0),
            dict(n_workers=0),
            dict(n_iterations=0),
            dict(jitter_std=-0.1),
            dict(monitor_interval=0.0),
            dict(ps_update_fixed=-1.0),
            dict(sched=None),
            dict(worker_compute_scale={5: 1.0}),
            dict(worker_compute_scale={0: 0.0}),
        ],
    )
    def test_invalid_configs_raise(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainingConfig(**kwargs)

    def test_effective_policy_default(self):
        from repro.agg.policies import ModulePrefixPolicy

        assert isinstance(TrainingConfig().effective_policy(), ModulePrefixPolicy)

    def test_effective_policy_override(self):
        from repro.agg.policies import TimeWindowPolicy

        policy = TimeWindowPolicy(1e-3)
        assert TrainingConfig(agg_policy=policy).effective_policy() is policy


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            errors.ConfigurationError,
            errors.SchedulingError,
            errors.SimulationError,
            errors.ProfileError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_simulation_error_is_runtime_error(self):
        assert issubclass(errors.SimulationError, RuntimeError)
