"""Unit tests for the TCP transfer-time model (the paper's f(s, B))."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.tcp import TCPParams, effective_bandwidth, half_rate_size, transfer_time
from repro.quantities import Gbps, MB


@pytest.fixture
def params() -> TCPParams:
    return TCPParams()


def test_zero_bytes_take_zero_time(params):
    assert transfer_time(0.0, 1 * Gbps, params) == 0.0


def test_transfer_time_positive_for_positive_size(params):
    assert transfer_time(1.0, 1 * Gbps, params) > 0.0


def test_transfer_time_increases_with_size(params):
    sizes = np.array([1e3, 1e5, 1e6, 1e7, 1e8])
    times = transfer_time(sizes, 1 * Gbps, params)
    assert np.all(np.diff(times) > 0)


def test_large_transfer_approaches_line_rate(params):
    size = 10_000 * MB
    t = transfer_time(size, 1 * Gbps, params)
    ideal = size / (1 * Gbps * params.goodput)
    assert t < ideal * 1.01


def test_effective_bandwidth_shape_of_eq10(params):
    """f(s,B) -> 0 for small s, -> B*goodput for large s (Eq. 10)."""
    bw = 3 * Gbps
    small = effective_bandwidth(100.0, bw, params)
    large = effective_bandwidth(1e10, bw, params)
    assert small < 0.01 * bw
    assert large > 0.95 * bw * params.goodput
    assert effective_bandwidth(0.0, bw, params) == 0.0


def test_effective_bandwidth_monotone_in_size(params):
    sizes = np.logspace(2, 9, 40)
    eff = effective_bandwidth(sizes, 1 * Gbps, params)
    assert np.all(np.diff(eff) >= -1e-9)


def test_warm_path_skips_slow_start():
    params = TCPParams(rtt=1e-3)
    size = 4 * MB
    cold = transfer_time(size, 10 * Gbps, params, warm=False)
    warm = transfer_time(size, 10 * Gbps, params, warm=True)
    assert warm < cold
    # Warm path is affine: setup + bytes / line rate.
    setup = params.fixed_overhead + params.handshake_rtts * params.rtt
    expected = setup + size / (10 * Gbps * params.goodput)
    assert warm == pytest.approx(expected, rel=1e-9)


def test_warm_equals_cold_when_cwnd_covers_bdp():
    # At very low bandwidth the initial window already covers the BDP.
    params = TCPParams(rtt=0.1e-3, init_cwnd_segments=100)
    size = 1 * MB
    bw = 10e6  # 10 MB/s -> BDP = 1 KB << init window
    assert transfer_time(size, bw, params) == pytest.approx(
        transfer_time(size, bw, params, warm=True)
    )


def test_goodput_scales_line_rate():
    base = TCPParams(goodput=1.0, handshake_rtts=0.0, fixed_overhead=0.0)
    half = TCPParams(goodput=0.5, handshake_rtts=0.0, fixed_overhead=0.0)
    size = 100 * MB
    t1 = transfer_time(size, 1 * Gbps, base, warm=True)
    t2 = transfer_time(size, 1 * Gbps, half, warm=True)
    assert t2 == pytest.approx(2 * t1)


def test_vectorized_matches_scalar(params):
    sizes = np.array([1e4, 1e6, 1e8])
    vec = transfer_time(sizes, 2 * Gbps, params)
    for s, t in zip(sizes, vec):
        assert transfer_time(float(s), 2 * Gbps, params) == pytest.approx(float(t))


def test_scalar_matches_vectorized_bitwise(params):
    """The scalar fast path replays the numpy loop bit-for-bit.

    Sizes span sub-MSS to multi-GB so both the partial-round and the
    line-rate-tail branches are hit; cold and warm paths both gate.
    """
    sizes = np.array([1.0, 500.0, 1448.0, 14_480.0, 1e6, 64e6, 3.2e9])
    for bw in (0.5 * Gbps, 3 * Gbps, 25 * Gbps):
        for warm in (False, True):
            vec = transfer_time(sizes, bw, params, warm=warm)
            for s, t in zip(sizes, vec):
                scalar = transfer_time(float(s), bw, params, warm=warm)
                assert scalar == float(t)  # bitwise, not approx


def test_memo_table_tracks_bandwidth_changes(params):
    """A bandwidth change mid-run must not serve a stale slow-start table."""
    sizes = np.array([1e5, 4e6])
    for bw in (1 * Gbps, 2 * Gbps, 1 * Gbps, 0.7 * Gbps):
        vec = transfer_time(sizes, bw, params)
        for s, t in zip(sizes, vec):
            assert transfer_time(float(s), bw, params) == float(t)


def test_memo_table_tracks_params_changes():
    """Distinct TCPParams key distinct tables (frozen dataclass hash)."""
    a = TCPParams(rtt=0.8e-3)
    b = TCPParams(rtt=1.6e-3)
    size = 4e6
    t_a = transfer_time(size, 1 * Gbps, a)
    t_b = transfer_time(size, 1 * Gbps, b)
    assert t_a != t_b
    assert t_a == float(transfer_time(np.array([size]), 1 * Gbps, a)[0])
    assert t_b == float(transfer_time(np.array([size]), 1 * Gbps, b)[0])


def test_memo_cache_stays_bounded(params):
    """Noisy bandwidths (every send unique) must not grow the cache."""
    from repro.net.tcp import _TABLE_CACHE, _TABLE_CACHE_MAX

    for i in range(2 * _TABLE_CACHE_MAX):
        transfer_time(1e6, 1 * Gbps + float(i), params)
    assert len(_TABLE_CACHE) <= _TABLE_CACHE_MAX
    # Evicted entries still compute correctly when re-requested.
    assert transfer_time(1e6, 1 * Gbps, params) == float(
        transfer_time(np.array([1e6]), 1 * Gbps, params)[0]
    )


def test_half_rate_size_is_consistent(params):
    bw = 3 * Gbps
    s_half = half_rate_size(bw, params)
    eff = effective_bandwidth(s_half, bw, params)
    assert eff == pytest.approx(bw / 2, rel=1e-3)


def test_invalid_bandwidth_raises(params):
    with pytest.raises(ConfigurationError):
        transfer_time(1e6, 0.0, params)
    with pytest.raises(ConfigurationError):
        transfer_time(1e6, -1.0, params)


def test_negative_size_raises(params):
    with pytest.raises(ConfigurationError):
        transfer_time(-1.0, 1 * Gbps, params)


@pytest.mark.parametrize(
    "field,value",
    [
        ("rtt", 0.0),
        ("mss", -1.0),
        ("init_cwnd_segments", 0.0),
        ("handshake_rtts", -0.5),
        ("fixed_overhead", -1e-6),
        ("warm_threshold", -1e-3),
        ("goodput", 0.0),
        ("goodput", 1.5),
    ],
)
def test_invalid_params_raise(field, value):
    kwargs = {field: value}
    with pytest.raises(ConfigurationError):
        TCPParams(**kwargs)


def test_setup_cost_charged_once_per_message(params):
    """One big message is cheaper than two halves (the batching payoff)."""
    size = 8 * MB
    one = transfer_time(size, 3 * Gbps, params, warm=True)
    two = 2 * transfer_time(size / 2, 3 * Gbps, params, warm=True)
    assert one < two
