"""Unit tests for serialized links and bandwidth schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.link import BandwidthSchedule, Link
from repro.net.tcp import TCPParams, transfer_time
from repro.quantities import Gbps, MB
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def link(engine):
    return Link(engine, BandwidthSchedule.constant(1 * Gbps), TCPParams(), name="t")


class TestBandwidthSchedule:
    def test_constant(self):
        sched = BandwidthSchedule.constant(5.0)
        assert sched.value(0.0) == 5.0
        assert sched.value(100.0) == 5.0

    def test_piecewise_lookup(self):
        sched = BandwidthSchedule([(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)])
        assert sched.value(5.0) == 1.0
        assert sched.value(10.0) == 2.0
        assert sched.value(15.0) == 2.0
        assert sched.value(25.0) == 3.0

    def test_time_before_first_point_extends_back(self):
        sched = BandwidthSchedule([(5.0, 2.0)])
        assert sched.value(0.0) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            BandwidthSchedule([])

    def test_nonpositive_bandwidth_raises(self):
        with pytest.raises(ConfigurationError):
            BandwidthSchedule([(0.0, 0.0)])

    def test_non_increasing_times_raise(self):
        with pytest.raises(ConfigurationError):
            BandwidthSchedule([(0.0, 1.0), (0.0, 2.0)])

    def test_mean(self):
        sched = BandwidthSchedule([(0.0, 1.0), (1.0, 3.0)])
        assert sched.mean == 2.0

    def test_cursor_survives_backward_queries(self):
        """The monotone cursor must not poison out-of-order lookups
        (fault-injection probes and replay query behind sim time)."""
        points = [(0.0, 1.0), (5.0, 2.0), (10.0, 3.0), (20.0, 4.0)]
        sched = BandwidthSchedule(points)
        queries = [0.0, 7.0, 25.0, 3.0, 12.0, 0.5, 19.9, 20.0, 4.9, 5.0]
        expected = [1.0, 2.0, 4.0, 1.0, 3.0, 1.0, 3.0, 4.0, 1.0, 2.0]
        for q, want in zip(queries, expected):
            assert sched.value(q) == want
        # A fresh schedule (cursor at 0) agrees on every query.
        fresh = BandwidthSchedule(points)
        for q, want in zip(queries, expected):
            assert fresh.value(q) == want


class TestLink:
    def test_send_completes_and_records(self, engine, link):
        done = []
        end = link.send(4 * MB, tag="x", on_complete=lambda: done.append(engine.now))
        assert link.busy
        engine.run()
        assert done == [end]
        assert not link.busy
        assert len(link.records) == 1
        rec = link.records[0]
        assert rec.tag == "x"
        assert rec.nbytes == 4 * MB
        assert rec.duration == pytest.approx(end)

    def test_send_while_busy_raises(self, engine, link):
        link.send(1 * MB)
        with pytest.raises(SimulationError):
            link.send(1 * MB)

    def test_on_idle_fires_after_completion(self, engine, link):
        idles = []
        link.on_idle = lambda: idles.append(engine.now)
        link.send(1 * MB)
        engine.run()
        assert len(idles) == 1

    def test_back_to_back_sends_are_warm(self, engine, link):
        """Second send right after the first skips slow-start."""
        params = link.tcp
        link.send(8 * MB)
        engine.run()
        first = link.records[0].duration
        link.send(8 * MB)
        engine.run()
        second = link.records[1].duration
        assert second <= first
        warm_expected = float(
            transfer_time(8 * MB, 1 * Gbps, params, warm=True)
        )
        assert second == pytest.approx(warm_expected)

    def test_idle_gap_restores_cold_path(self, engine, link):
        link.send(8 * MB)
        engine.run()
        cold = link.records[0].duration
        # Wait longer than the warm threshold, then send again.
        engine.schedule_after(link.tcp.warm_threshold * 10, lambda: link.send(8 * MB))
        engine.run()
        assert link.records[1].duration == pytest.approx(cold)

    def test_bandwidth_schedule_respected(self, engine):
        sched = BandwidthSchedule([(0.0, 1 * Gbps), (1.0, 2 * Gbps)])
        link = Link(engine, sched, TCPParams())
        link.send(10 * MB)
        engine.run()
        slow = link.records[0].duration
        engine.schedule(2.0, lambda: link.send(10 * MB))
        engine.run()
        fast = link.records[1].duration
        assert fast < slow

    def test_extra_time_extends_occupancy(self, engine, link):
        base_end = link.send(1 * MB)
        engine.run()
        base = link.records[0].duration
        engine.schedule_after(1.0, lambda: link.send(1 * MB, extra_time=0.01))
        engine.run()
        assert link.records[1].duration == pytest.approx(base + 0.01, rel=1e-6)
        assert base_end > 0

    def test_negative_size_raises(self, engine, link):
        with pytest.raises(SimulationError):
            link.send(-1.0)

    def test_busy_time_accounts_transfers(self, engine, link):
        link.send(4 * MB)
        engine.run()
        assert link.busy_time() == pytest.approx(link.records[0].duration)

    def test_busy_time_accumulator_matches_record_sum(self, engine, link):
        """The O(1) running total must equal the per-record sum exactly."""
        for i in range(4):
            engine.schedule(float(i), lambda: link.send(2 * MB))
            engine.run()
        assert len(link.records) == 4
        assert link.busy_time() == sum(r.duration for r in link.records)

    def test_busy_time_retrospective_horizon(self, engine, link):
        """A horizon before ``now`` still clamps per record (slow path)."""
        for i in range(3):
            engine.schedule(float(i), lambda: link.send(2 * MB))
            engine.run()
        first = link.records[0]
        second = link.records[1]
        # Horizon mid-way through the second transfer: full first record
        # plus the covered part of the second.
        horizon = second.start + 0.5 * second.duration
        expected = first.duration + (horizon - second.start)
        assert link.busy_time(until=horizon) == pytest.approx(expected)
        assert link.busy_time(until=0.0) == 0.0

    def test_busy_time_prorates_in_flight(self, engine, link):
        end = link.send(8 * MB)
        mid = end / 2
        engine.run(until=mid)
        assert link.busy
        assert link.busy_time() == pytest.approx(mid)
        # Future horizon caps at the transfer's end.
        assert link.busy_time(until=end * 2) == pytest.approx(end)

    def test_total_bytes_accumulates(self, engine, link):
        link.send(1 * MB)
        engine.run()
        link.send(2 * MB)
        engine.run()
        assert link.total_bytes == pytest.approx(3 * MB)

    def test_noise_requires_valid_std(self, engine):
        with pytest.raises(ConfigurationError):
            Link(
                engine,
                BandwidthSchedule.constant(1 * Gbps),
                TCPParams(),
                noise_std=1.5,
            )

    def test_noise_perturbs_duration(self, engine):
        rng = np.random.default_rng(3)
        link = Link(
            engine,
            BandwidthSchedule.constant(1 * Gbps),
            TCPParams(),
            noise_rng=rng,
            noise_std=0.2,
        )
        durations = []
        for i in range(5):
            engine.schedule(float(i), lambda: link.send(4 * MB))
            engine.run(until=float(i) + 0.9)
        durations = [r.duration for r in link.records]
        assert len(set(round(d, 9) for d in durations)) > 1


# ----------------------------------------------------------------------
# BandwidthSchedule public accessors and capping
# ----------------------------------------------------------------------

class TestSetLevel:
    def test_appends_a_breakpoint(self):
        sched = BandwidthSchedule.constant(4.0)
        sched.set_level(2.0, 1.0)
        assert sched.points == ((0.0, 4.0), (2.0, 1.0))
        assert sched.value(1.0) == 4.0
        assert sched.value(2.0) == 1.0

    def test_truncates_breakpoints_at_or_after_time(self):
        sched = BandwidthSchedule([(0.0, 1.0), (5.0, 2.0), (10.0, 3.0)])
        sched.set_level(5.0, 9.0)
        assert sched.points == ((0.0, 1.0), (5.0, 9.0))

    def test_noop_when_tail_already_at_level(self):
        sched = BandwidthSchedule([(0.0, 1.0), (5.0, 2.0)])
        version = sched._version
        sched.set_level(8.0, 2.0)
        assert sched.points == ((0.0, 1.0), (5.0, 2.0))
        assert sched._version == version  # consumers' caches stay valid

    def test_truncation_dedupes_against_preceding_segment(self):
        sched = BandwidthSchedule([(0.0, 1.0), (5.0, 2.0)])
        sched.set_level(3.0, 1.0)
        # Future breakpoints dropped, and (3.0, 1.0) would duplicate the
        # preceding level — one breakpoint remains.
        assert sched.points == ((0.0, 1.0),)

    def test_relevel_at_existing_time_replaces(self):
        sched = BandwidthSchedule([(0.0, 4.0)])
        sched.set_level(0.0, 2.5)
        assert sched.points == ((0.0, 2.5),)

    def test_rejects_bad_arguments(self):
        sched = BandwidthSchedule.constant(1.0)
        with pytest.raises(ConfigurationError):
            sched.set_level(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            sched.set_level(-1.0, 1.0)
        with pytest.raises(ConfigurationError):
            sched.set_level(float("nan"), 1.0)
        with pytest.raises(ConfigurationError):
            sched.set_level(float("inf"), 1.0)

    def test_stale_cursor_is_clamped_after_truncation(self):
        """Regression: a lookup deep in the schedule leaves the cursor on a
        late segment; a truncating set_level then shrinks the breakpoint
        list below the cursor.  The next value() must clamp, not IndexError
        or scan a prefix that no longer exists."""
        sched = BandwidthSchedule([(0.0, 1.0), (5.0, 2.0), (10.0, 3.0), (20.0, 4.0)])
        assert sched.value(25.0) == 4.0  # cursor -> last segment
        sched.set_level(4.0, 7.0)  # truncates to [(0,1),(4,7)]
        assert sched.value(3.0) == 1.0  # behind-cursor lookup post-truncation
        assert sched.value(4.5) == 7.0
        assert sched.value(100.0) == 7.0

    def test_link_constant_fast_path_sees_in_place_mutation(self, engine):
        """A Link caches a constant schedule's level; set_level must bust
        that cache via the version counter even though the schedule object
        identity is unchanged (the fleet fabric re-levels in place)."""
        sched = BandwidthSchedule.constant(2 * Gbps)
        link = Link(engine, sched, TCPParams(), name="t")
        first_end = link.send(10 * MB)
        engine.run()
        sched.set_level(engine.now, 1 * Gbps)
        second_end = link.send(10 * MB) - engine.now
        assert second_end > (first_end - 0.0)  # half the bandwidth: slower
        expected = transfer_time(10 * MB, 1 * Gbps, link.tcp, warm=link._is_warm())
        assert second_end == pytest.approx(expected, rel=1e-9)


class TestScheduleCapped:
    def test_points_roundtrip(self):
        sched = BandwidthSchedule([(0.0, 5.0), (2.0, 9.0)])
        assert sched.points == ((0.0, 5.0), (2.0, 9.0))
        assert sched.times == (0.0, 2.0)
        assert sched.values == (5.0, 9.0)

    def test_capped_limits_every_segment(self):
        sched = BandwidthSchedule([(0.0, 5.0), (2.0, 9.0), (4.0, 1.0)])
        capped = sched.capped(4.0)
        assert capped.values == (4.0, 4.0, 1.0)
        assert capped.times == sched.times
        # the original is untouched
        assert sched.values == (5.0, 9.0, 1.0)

    def test_capped_above_peak_is_identity(self):
        sched = BandwidthSchedule([(0.0, 5.0), (2.0, 9.0)])
        assert sched.capped(100.0).points == sched.points

    def test_capped_rejects_nonpositive_limit(self):
        from repro.errors import ConfigurationError

        sched = BandwidthSchedule.constant(5.0)
        with pytest.raises(ConfigurationError):
            sched.capped(0.0)
