"""Unit tests for the star topology."""

import pytest

from repro.errors import ConfigurationError
from repro.net.link import BandwidthSchedule
from repro.net.topology import StarTopology
from repro.quantities import Gbps, Mbps
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    return Engine()


def test_builds_duplex_links_per_worker(engine):
    topo = StarTopology(engine, n_workers=3, bandwidth=1 * Gbps)
    assert len(topo.uplinks) == 3
    assert len(topo.downlinks) == 3
    assert topo.uplink(2).name == "worker2-up"
    assert topo.downlink(0).name == "worker0-down"


def test_per_worker_override(engine):
    topo = StarTopology(
        engine,
        n_workers=3,
        bandwidth=3 * Gbps,
        worker_bandwidth={1: 500 * Mbps},
    )
    assert topo.uplink(0).current_bandwidth() == pytest.approx(3 * Gbps)
    assert topo.uplink(1).current_bandwidth() == pytest.approx(500 * Mbps)


def test_override_unknown_worker_raises(engine):
    with pytest.raises(ConfigurationError):
        StarTopology(engine, n_workers=2, bandwidth=1 * Gbps, worker_bandwidth={5: 1.0})


def test_ps_bandwidth_caps_per_worker_share(engine):
    topo = StarTopology(engine, n_workers=4, bandwidth=10 * Gbps, ps_bandwidth=4 * Gbps)
    assert topo.uplink(0).current_bandwidth() == pytest.approx(1 * Gbps)


def test_ps_cap_does_not_raise_slow_workers(engine):
    topo = StarTopology(
        engine,
        n_workers=2,
        bandwidth=10 * Gbps,
        worker_bandwidth={0: 1 * Gbps},
        ps_bandwidth=40 * Gbps,
    )
    assert topo.uplink(0).current_bandwidth() == pytest.approx(1 * Gbps)


def test_schedule_bandwidth(engine):
    sched = BandwidthSchedule([(0.0, 1 * Gbps), (5.0, 2 * Gbps)])
    topo = StarTopology(engine, n_workers=1, bandwidth=sched)
    assert topo.uplink(0).current_bandwidth() == pytest.approx(1 * Gbps)


def test_min_bandwidth_reflects_slowest_worker(engine):
    topo = StarTopology(
        engine,
        n_workers=3,
        bandwidth=3 * Gbps,
        worker_bandwidth={2: 500 * Mbps},
    )
    assert topo.min_bandwidth() == pytest.approx(500 * Mbps)


def test_invalid_worker_count_raises(engine):
    with pytest.raises(ConfigurationError):
        StarTopology(engine, n_workers=0, bandwidth=1 * Gbps)


def test_invalid_ps_bandwidth_raises(engine):
    with pytest.raises(ConfigurationError):
        StarTopology(engine, n_workers=1, bandwidth=1 * Gbps, ps_bandwidth=0.0)


# ----------------------------------------------------------------------
# Water-filling (max-min fair) division of the PS-side NIC
# ----------------------------------------------------------------------

class TestWaterFilling:
    def test_fitting_demands_are_uncapped(self):
        from repro.net.topology import water_fill_level, water_fill_shares

        assert water_fill_level([1.0, 2.0], capacity=10.0) == float("inf")
        assert water_fill_shares([1.0, 2.0], 10.0) == [1.0, 2.0]

    def test_homogeneous_reduces_to_static_split(self):
        from repro.net.topology import water_fill_shares

        shares = water_fill_shares([10.0, 10.0, 10.0, 10.0], capacity=4.0)
        assert shares == pytest.approx([1.0, 1.0, 1.0, 1.0])

    def test_slow_flow_keeps_rate_and_surplus_is_reclaimed(self):
        from repro.net.topology import water_fill_shares

        # Static split would give each flow 2.0, stranding 1.5 of the
        # slow flow's share; water-filling hands it to the fast flows.
        shares = water_fill_shares([0.5, 10.0, 10.0], capacity=6.0)
        assert shares[0] == pytest.approx(0.5)
        assert shares[1] == shares[2] == pytest.approx(2.75)
        assert sum(shares) == pytest.approx(6.0)

    def test_shares_exhaust_capacity_when_oversubscribed(self):
        from repro.net.topology import water_fill_shares

        shares = water_fill_shares([1.0, 3.0, 5.0, 7.0], capacity=8.0)
        assert sum(shares) == pytest.approx(8.0)
        # max-min: nobody below the level exceeds their demand
        assert shares[0] == pytest.approx(1.0)

    def test_invalid_inputs_raise(self):
        from repro.net.topology import water_fill_level

        with pytest.raises(ConfigurationError):
            water_fill_level([1.0], capacity=0.0)
        with pytest.raises(ConfigurationError):
            water_fill_level([0.0, 1.0], capacity=5.0)


def test_ps_cap_water_fills_heterogeneous_workers(engine):
    """The slow worker's unusable share flows to the fast workers."""
    topo = StarTopology(
        engine,
        n_workers=3,
        bandwidth=10 * Gbps,
        worker_bandwidth={0: 500 * Mbps},
        ps_bandwidth=6 * Gbps,
    )
    assert topo.uplink(0).current_bandwidth() == pytest.approx(500 * Mbps)
    fast = (6 * Gbps - 500 * Mbps) / 2
    assert topo.uplink(1).current_bandwidth() == pytest.approx(fast)
    assert topo.uplink(2).current_bandwidth() == pytest.approx(fast)


def test_schedule_bandwidth_with_ps_cap_regression(engine):
    """Regression: a schedule-valued ``bandwidth`` combined with
    ``ps_bandwidth`` used to reach into the schedule's private attributes;
    it now goes through the public ``capped``/water-fill path and the cap
    is applied piecewise at every breakpoint."""
    sched = BandwidthSchedule([(0.0, 1 * Gbps), (5.0, 8 * Gbps)])
    topo = StarTopology(engine, n_workers=2, bandwidth=sched, ps_bandwidth=4 * Gbps)
    # t=0: both demand 1 Gbps, total 2 <= 4 — uncapped.
    assert topo.uplink(0).current_bandwidth() == pytest.approx(1 * Gbps)
    engine.run(until=6.0)
    # t>5: both demand 8 Gbps; the 4 Gbps PS NIC splits evenly.
    assert topo.uplink(0).current_bandwidth() == pytest.approx(2 * Gbps)
    assert topo.uplink(1).current_bandwidth() == pytest.approx(2 * Gbps)


def test_per_worker_schedule_override_with_ps_cap(engine):
    """Mixed scalar + schedule overrides water-fill piecewise."""
    slow = BandwidthSchedule([(0.0, 4 * Gbps), (2.0, 1 * Gbps)])
    topo = StarTopology(
        engine,
        n_workers=2,
        bandwidth=10 * Gbps,
        worker_bandwidth={0: slow},
        ps_bandwidth=6 * Gbps,
    )
    # t=0: demands (4, 10) vs 6 -> shares (3, 3).
    assert topo.uplink(0).current_bandwidth() == pytest.approx(3 * Gbps)
    assert topo.uplink(1).current_bandwidth() == pytest.approx(3 * Gbps)
    engine.run(until=3.0)
    # t>2: demands (1, 10) vs 6 -> slow keeps 1, fast reclaims to 5.
    assert topo.uplink(0).current_bandwidth() == pytest.approx(1 * Gbps)
    assert topo.uplink(1).current_bandwidth() == pytest.approx(5 * Gbps)


# ----------------------------------------------------------------------
# ShardedTopology
# ----------------------------------------------------------------------

class TestShardedTopology:
    def test_builds_per_shard_duplex_links(self, engine):
        from repro.net.topology import ShardedTopology

        topo = ShardedTopology(engine, n_workers=2, n_servers=3, bandwidth=1 * Gbps)
        assert len(topo.uplinks) == 2
        assert all(len(links) == 3 for links in topo.uplinks)
        assert topo.uplink(1, 2).name == "worker1-s2-up"
        assert topo.downlink(0, 1).name == "worker0-s1-down"
        assert topo.worker_uplinks(0) == topo.uplinks[0]
        assert topo.worker_downlinks(1) == topo.downlinks[1]

    def test_ps_bandwidth_is_per_server(self, engine):
        from repro.net.topology import ShardedTopology

        topo = ShardedTopology(
            engine, n_workers=4, n_servers=2,
            bandwidth=10 * Gbps, ps_bandwidth=4 * Gbps,
        )
        # Each server's 4 Gbps NIC is split across the 4 workers — every
        # shard link gets 1 Gbps, independent of the number of shards.
        for w in range(4):
            for s in range(2):
                assert topo.uplink(w, s).current_bandwidth() == pytest.approx(1 * Gbps)

    def test_worker_nic_caps_each_shard_flow(self, engine):
        from repro.net.topology import ShardedTopology

        topo = ShardedTopology(
            engine, n_workers=2, n_servers=2,
            bandwidth=10 * Gbps, worker_bandwidth={0: 500 * Mbps},
            ps_bandwidth=40 * Gbps,
        )
        assert topo.uplink(0, 1).current_bandwidth() == pytest.approx(500 * Mbps)
        assert topo.min_bandwidth() == pytest.approx(500 * Mbps)

    def test_invalid_counts_raise(self, engine):
        from repro.net.topology import ShardedTopology

        with pytest.raises(ConfigurationError):
            ShardedTopology(engine, n_workers=0, n_servers=2, bandwidth=1 * Gbps)
        with pytest.raises(ConfigurationError):
            ShardedTopology(engine, n_workers=2, n_servers=0, bandwidth=1 * Gbps)
        with pytest.raises(ConfigurationError):
            ShardedTopology(
                engine, n_workers=1, n_servers=1, bandwidth=1 * Gbps,
                ps_bandwidth=-1.0,
            )


class TestClusterFabric:
    def _fabric(self, core=10 * Gbps):
        from repro.net.topology import ClusterFabric

        return ClusterFabric(core)

    def test_rejects_nonpositive_core(self):
        from repro.net.topology import ClusterFabric

        with pytest.raises(ConfigurationError):
            ClusterFabric(0.0)

    def test_single_tenant_gets_exact_nic_rate(self):
        fabric = self._fabric(core=10 * Gbps)
        sched = fabric.admit("job0", n_links=2, nic_bandwidth=3 * Gbps)
        # Bit-exactness contract: an unconstrained tenant keeps its NIC
        # rate with no float division, and the live schedule keeps its
        # single breakpoint (the links' constant-schedule fast path).
        assert sched.points == ((0.0, 3 * Gbps),)
        assert fabric.share("job0") == 3 * Gbps
        assert fabric.oversubscription() == pytest.approx(0.6)

    def test_contended_tenants_split_the_core_evenly(self):
        fabric = self._fabric(core=10 * Gbps)
        a = fabric.admit("a", n_links=2, nic_bandwidth=3 * Gbps, now=0.0)
        b = fabric.admit("b", n_links=2, nic_bandwidth=3 * Gbps, now=1.0)
        # 12 Gbps demand on a 10 Gbps core: each tenant gets 5 Gbps
        # aggregate, 2.5 Gbps per link, from t=1 on.
        assert a.value(0.5) == pytest.approx(3 * Gbps)
        assert a.value(1.0) == pytest.approx(2.5 * Gbps)
        assert b.value(1.0) == pytest.approx(2.5 * Gbps)
        assert fabric.demand() == pytest.approx(12 * Gbps)
        assert fabric.oversubscription() == pytest.approx(1.2)

    def test_water_fill_protects_small_tenants(self):
        fabric = self._fabric(core=10 * Gbps)
        small = fabric.admit("small", n_links=1, nic_bandwidth=1 * Gbps)
        big = fabric.admit("big", n_links=4, nic_bandwidth=10 * Gbps, now=0.0)
        # Max-min: the 1 Gbps tenant is unconstrained and keeps its NIC
        # rate exactly; the big tenant gets the 9 Gbps remainder.
        assert small.value(0.0) == 1 * Gbps
        assert big.value(0.0) == pytest.approx(9 * Gbps / 4)

    def test_share_never_exceeds_own_nic(self):
        fabric = self._fabric(core=100 * Gbps)
        sched = fabric.admit("a", n_links=2, nic_bandwidth=3 * Gbps)
        fabric.admit("b", n_links=2, nic_bandwidth=3 * Gbps)
        assert sched.value(0.0) == 3 * Gbps  # plenty of core: NIC-limited

    def test_release_restores_the_survivors_share(self):
        fabric = self._fabric(core=10 * Gbps)
        a = fabric.admit("a", n_links=2, nic_bandwidth=3 * Gbps, now=0.0)
        fabric.admit("b", n_links=2, nic_bandwidth=3 * Gbps, now=1.0)
        assert a.value(1.0) == pytest.approx(2.5 * Gbps)
        fabric.release("b", now=2.0)
        # Back to unconstrained: the exact NIC rate again.
        assert a.value(2.0) == 3 * Gbps
        assert fabric.tenants == ("a",)

    def test_duplicate_admit_and_unknown_release_raise(self):
        fabric = self._fabric()
        fabric.admit("a", n_links=1, nic_bandwidth=1 * Gbps)
        with pytest.raises(ConfigurationError):
            fabric.admit("a", n_links=1, nic_bandwidth=1 * Gbps)
        with pytest.raises(ConfigurationError):
            fabric.release("ghost")

    def test_admit_validates_arguments(self):
        fabric = self._fabric()
        with pytest.raises(ConfigurationError):
            fabric.admit("a", n_links=0, nic_bandwidth=1 * Gbps)
        with pytest.raises(ConfigurationError):
            fabric.admit("a", n_links=1, nic_bandwidth=0.0)
