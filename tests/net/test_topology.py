"""Unit tests for the star topology."""

import pytest

from repro.errors import ConfigurationError
from repro.net.link import BandwidthSchedule
from repro.net.topology import StarTopology
from repro.quantities import Gbps, Mbps
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    return Engine()


def test_builds_duplex_links_per_worker(engine):
    topo = StarTopology(engine, n_workers=3, bandwidth=1 * Gbps)
    assert len(topo.uplinks) == 3
    assert len(topo.downlinks) == 3
    assert topo.uplink(2).name == "worker2-up"
    assert topo.downlink(0).name == "worker0-down"


def test_per_worker_override(engine):
    topo = StarTopology(
        engine,
        n_workers=3,
        bandwidth=3 * Gbps,
        worker_bandwidth={1: 500 * Mbps},
    )
    assert topo.uplink(0).current_bandwidth() == pytest.approx(3 * Gbps)
    assert topo.uplink(1).current_bandwidth() == pytest.approx(500 * Mbps)


def test_override_unknown_worker_raises(engine):
    with pytest.raises(ConfigurationError):
        StarTopology(engine, n_workers=2, bandwidth=1 * Gbps, worker_bandwidth={5: 1.0})


def test_ps_bandwidth_caps_per_worker_share(engine):
    topo = StarTopology(engine, n_workers=4, bandwidth=10 * Gbps, ps_bandwidth=4 * Gbps)
    assert topo.uplink(0).current_bandwidth() == pytest.approx(1 * Gbps)


def test_ps_cap_does_not_raise_slow_workers(engine):
    topo = StarTopology(
        engine,
        n_workers=2,
        bandwidth=10 * Gbps,
        worker_bandwidth={0: 1 * Gbps},
        ps_bandwidth=40 * Gbps,
    )
    assert topo.uplink(0).current_bandwidth() == pytest.approx(1 * Gbps)


def test_schedule_bandwidth(engine):
    sched = BandwidthSchedule([(0.0, 1 * Gbps), (5.0, 2 * Gbps)])
    topo = StarTopology(engine, n_workers=1, bandwidth=sched)
    assert topo.uplink(0).current_bandwidth() == pytest.approx(1 * Gbps)


def test_min_bandwidth_reflects_slowest_worker(engine):
    topo = StarTopology(
        engine,
        n_workers=3,
        bandwidth=3 * Gbps,
        worker_bandwidth={2: 500 * Mbps},
    )
    assert topo.min_bandwidth() == pytest.approx(500 * Mbps)


def test_invalid_worker_count_raises(engine):
    with pytest.raises(ConfigurationError):
        StarTopology(engine, n_workers=0, bandwidth=1 * Gbps)


def test_invalid_ps_bandwidth_raises(engine):
    with pytest.raises(ConfigurationError):
        StarTopology(engine, n_workers=1, bandwidth=1 * Gbps, ps_bandwidth=0.0)
