"""Ring/hierarchical collective topologies and step executors.

The invariants that make the collective cost model trustworthy:

* a ring operation of ``S`` bytes serializes exactly ``2(N-1)/N · S``
  bytes on every ring link (the textbook allreduce lower bound);
* the hierarchical plan is intra reduce-scatter, inter ring, intra
  all-gather, with the advertised per-phase chunk sizes;
* degenerate shapes (one worker, one group, groups of one) collapse to
  the right flat structure instead of special-casing;
* the executor is a :class:`~repro.net.transport.Transport`: one
  operation at a time, completion through the event loop.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.net.collective import (
    HierarchicalExecutor,
    HierarchicalTopology,
    RingExecutor,
    RingTopology,
)
from repro.net.tcp import TCPParams
from repro.net.transport import LinkTransport, Transport
from repro.quantities import Gbps, MB
from repro.sim.engine import Engine

TCP = TCPParams(rtt=0.2e-3, fixed_overhead=0.1e-3, goodput=0.8)


def _run_op(executor, nbytes):
    """Drive one allreduce through the engine; return completion time."""
    done = []
    executor.send_unit(nbytes, tag=("allreduce", 0), on_complete=lambda: done.append(
        executor.engine.now
    ))
    executor.engine.run()
    assert len(done) == 1
    return done[0]


# ----------------------------------------------------------------------
# Topologies
# ----------------------------------------------------------------------

def test_ring_topology_shape():
    topo = RingTopology(Engine(), n_workers=4, bandwidth=3 * Gbps, tcp=TCP)
    assert len(topo.links) == 4
    assert topo.ring_link(2) is topo.links[2]
    assert topo.links[1].name == "worker1-ring"
    assert topo.worker_uplinks(3) == [topo.links[3]]
    assert topo.worker_downlinks(3) == []


def test_ring_min_bandwidth_sees_slow_worker():
    topo = RingTopology(
        Engine(), n_workers=3, bandwidth=3 * Gbps, tcp=TCP,
        worker_bandwidth={1: 1 * Gbps},
    )
    assert topo.min_bandwidth() == pytest.approx(1 * Gbps)


def test_ring_topology_validation():
    with pytest.raises(ConfigurationError):
        RingTopology(Engine(), n_workers=0, bandwidth=3 * Gbps)
    with pytest.raises(ConfigurationError):
        RingTopology(
            Engine(), n_workers=2, bandwidth=3 * Gbps, worker_bandwidth={5: 1e9}
        )


def test_hierarchical_topology_shape():
    topo = HierarchicalTopology(
        Engine(), n_workers=6, group_size=3, bandwidth=3 * Gbps, tcp=TCP
    )
    assert topo.n_groups == 2
    assert len(topo.local_links) == 6
    assert len(topo.global_links) == 2
    assert topo.group_of(4) == 1
    assert topo.leader_of(1) == 3
    # Leaders carry local + global; followers local only.
    assert topo.worker_uplinks(3) == [topo.local_links[3], topo.global_links[1]]
    assert topo.worker_uplinks(4) == [topo.local_links[4]]


def test_hierarchical_group_size_must_divide():
    with pytest.raises(ConfigurationError):
        HierarchicalTopology(Engine(), n_workers=4, group_size=3, bandwidth=3 * Gbps)


# ----------------------------------------------------------------------
# Ring executor: byte conservation and step structure
# ----------------------------------------------------------------------

@pytest.mark.parametrize("n_workers", [2, 3, 4, 7])
def test_ring_bytes_per_link(n_workers):
    topo = RingTopology(Engine(), n_workers=n_workers, bandwidth=3 * Gbps, tcp=TCP)
    executor = RingExecutor(topo)
    nbytes = 12 * MB
    _run_op(executor, nbytes)

    expected_steps = 2 * (n_workers - 1)
    assert executor.steps_completed == expected_steps
    assert executor.ops_completed == 1
    per_link = 2.0 * (n_workers - 1) / n_workers * nbytes
    for link in topo.links:
        assert len(link.records) == expected_steps
        assert sum(r.nbytes for r in link.records) == pytest.approx(per_link)
    assert executor.efficiency_factor == pytest.approx(
        2.0 * (n_workers - 1) / n_workers
    )


def test_ring_size_one_is_identity():
    """A one-worker ring moves no bytes and completes in zero sim time."""
    topo = RingTopology(Engine(), n_workers=1, bandwidth=3 * Gbps, tcp=TCP)
    executor = RingExecutor(topo)
    t = _run_op(executor, 12 * MB)
    assert t == 0.0
    assert executor.steps_completed == 0
    assert executor.ops_completed == 1
    assert topo.links[0].records == []
    assert executor.efficiency_factor == 0.0


def test_ring_executor_rejects_concurrent_ops():
    topo = RingTopology(Engine(), n_workers=3, bandwidth=3 * Gbps, tcp=TCP)
    executor = RingExecutor(topo)
    executor.send_unit(1 * MB, tag="a")
    assert executor.busy
    with pytest.raises(SimulationError):
        executor.send_unit(1 * MB, tag="b")


def test_ring_back_to_back_ops_complete_in_order():
    topo = RingTopology(Engine(), n_workers=2, bandwidth=3 * Gbps, tcp=TCP)
    executor = RingExecutor(topo)
    times = []

    def second():
        times.append(topo.engine.now)

    def first():
        times.append(topo.engine.now)
        executor.send_unit(2 * MB, tag="b", on_complete=second)

    executor.send_unit(4 * MB, tag="a", on_complete=first)
    topo.engine.run()
    assert len(times) == 2 and times[0] < times[1]
    assert executor.ops_completed == 2


# ----------------------------------------------------------------------
# Hierarchical executor
# ----------------------------------------------------------------------

def test_hierarchical_bytes_per_link():
    g, m = 2, 3  # 6 workers, 3 groups of 2
    topo = HierarchicalTopology(
        Engine(), n_workers=g * m, group_size=g, bandwidth=3 * Gbps, tcp=TCP
    )
    executor = HierarchicalExecutor(topo)
    nbytes = 12 * MB
    _run_op(executor, nbytes)

    assert executor.steps_completed == 2 * (g - 1) + 2 * (m - 1)
    for link in topo.local_links:  # two intra phases of (g-1) steps each
        assert sum(r.nbytes for r in link.records) == pytest.approx(
            2.0 * (g - 1) / g * nbytes
        )
    for link in topo.global_links:  # inter-group ring on S/g shards
        assert sum(r.nbytes for r in link.records) == pytest.approx(
            2.0 * (m - 1) / (g * m) * nbytes
        )
    assert executor.efficiency_factor == pytest.approx(
        2.0 * (g - 1) / g + 2.0 * (m - 1) / (g * m)
    )


def test_hierarchical_single_group_is_flat_ring():
    """m == 1: no inter phase; the intra phases form a flat ring of g."""
    g = 4
    topo = HierarchicalTopology(
        Engine(), n_workers=g, group_size=g, bandwidth=3 * Gbps, tcp=TCP
    )
    executor = HierarchicalExecutor(topo)
    nbytes = 8 * MB
    _run_op(executor, nbytes)
    assert executor.steps_completed == 2 * (g - 1)
    for link in topo.global_links:
        assert link.records == []
    assert executor.efficiency_factor == pytest.approx(2.0 * (g - 1) / g)


def test_hierarchical_groups_of_one_is_flat_ring():
    """g == 1: no intra phases; the inter ring is a flat ring of m."""
    m = 4
    topo = HierarchicalTopology(
        Engine(), n_workers=m, group_size=1, bandwidth=3 * Gbps, tcp=TCP
    )
    executor = HierarchicalExecutor(topo)
    nbytes = 8 * MB
    _run_op(executor, nbytes)
    assert executor.steps_completed == 2 * (m - 1)
    for link in topo.local_links:
        assert link.records == []
    assert executor.efficiency_factor == pytest.approx(2.0 * (m - 1) / m)


# ----------------------------------------------------------------------
# Transport interface
# ----------------------------------------------------------------------

def test_executors_are_transports():
    engine = Engine()
    ring = RingExecutor(RingTopology(engine, 2, 3 * Gbps, tcp=TCP))
    hier = HierarchicalExecutor(
        HierarchicalTopology(engine, 2, 1, 3 * Gbps, tcp=TCP)
    )
    assert isinstance(ring, Transport) and isinstance(hier, Transport)
    assert ring.tcp is hier.tcp or ring.tcp == hier.tcp


def test_link_transport_is_pass_through():
    from repro.net.link import BandwidthSchedule, Link

    engine = Engine()
    link = Link(engine, BandwidthSchedule.constant(3 * Gbps), TCP)
    transport = LinkTransport(link)
    assert transport.tcp is link.tcp
    assert not transport.busy
    transport.send_unit(1 * MB, tag=("push", 1))
    assert transport.busy and link.busy
    engine.run()
    assert not transport.busy
    assert [r.tag for r in link.records] == [("push", 1)]
