"""Unit tests for the periodic bandwidth monitor."""

import pytest

from repro.errors import ConfigurationError
from repro.net.link import BandwidthSchedule, Link
from repro.net.monitor import BandwidthMonitor
from repro.net.tcp import TCPParams
from repro.quantities import Gbps
from repro.sim.engine import Engine
from repro.sim.rng import make_rng


@pytest.fixture
def engine():
    return Engine()


def _link(engine, schedule):
    return Link(engine, schedule, TCPParams())


def test_initial_sample_taken_immediately(engine):
    link = _link(engine, BandwidthSchedule.constant(2 * Gbps))
    mon = BandwidthMonitor(engine, link, interval=5.0)
    assert mon.bandwidth == pytest.approx(2 * Gbps)
    assert mon.last_sample_time == 0.0


def test_periodic_sampling_follows_schedule(engine):
    sched = BandwidthSchedule([(0.0, 1 * Gbps), (7.0, 3 * Gbps)])
    link = _link(engine, sched)
    mon = BandwidthMonitor(engine, link, interval=5.0)
    engine.run(until=12.0)
    times = [t for t, _ in mon.history]
    values = [v for _, v in mon.history]
    assert times == [0.0, 5.0, 10.0]
    assert values[0] == pytest.approx(1 * Gbps)
    assert values[1] == pytest.approx(1 * Gbps)
    assert values[2] == pytest.approx(3 * Gbps)


def test_monitor_is_stale_between_samples(engine):
    """The monitor only sees bandwidth changes at its next sample."""
    sched = BandwidthSchedule([(0.0, 1 * Gbps), (1.0, 9 * Gbps)])
    link = _link(engine, sched)
    mon = BandwidthMonitor(engine, link, interval=5.0)
    engine.run(until=2.0)
    assert mon.bandwidth == pytest.approx(1 * Gbps)  # change not yet observed


def test_stop_halts_sampling(engine):
    link = _link(engine, BandwidthSchedule.constant(1 * Gbps))
    mon = BandwidthMonitor(engine, link, interval=1.0)
    engine.run(until=2.5)
    mon.stop()
    engine.run(until=10.0)
    assert mon.last_sample_time <= 3.0


def test_noise_needs_rng(engine):
    link = _link(engine, BandwidthSchedule.constant(1 * Gbps))
    with pytest.raises(ConfigurationError):
        BandwidthMonitor(engine, link, noise_std=0.1)


def test_noisy_samples_vary(engine):
    link = _link(engine, BandwidthSchedule.constant(1 * Gbps))
    mon = BandwidthMonitor(engine, link, interval=1.0, noise_std=0.1, rng=make_rng(5))
    engine.run(until=6.0)
    values = [v for _, v in mon.history]
    assert len(set(values)) > 1
    assert all(0.5 * Gbps < v < 1.5 * Gbps for v in values)


def test_invalid_interval_raises(engine):
    link = _link(engine, BandwidthSchedule.constant(1 * Gbps))
    with pytest.raises(ConfigurationError):
        BandwidthMonitor(engine, link, interval=0.0)
