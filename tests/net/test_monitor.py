"""Unit tests for the periodic bandwidth monitor."""

import pytest

from repro.errors import ConfigurationError
from repro.net.link import BandwidthSchedule, Link
from repro.net.monitor import BandwidthMonitor
from repro.net.tcp import TCPParams
from repro.quantities import Gbps
from repro.sim.engine import Engine
from repro.sim.rng import make_rng


@pytest.fixture
def engine():
    return Engine()


def _link(engine, schedule):
    return Link(engine, schedule, TCPParams())


def test_initial_sample_taken_immediately(engine):
    link = _link(engine, BandwidthSchedule.constant(2 * Gbps))
    mon = BandwidthMonitor(engine, link, interval=5.0)
    assert mon.bandwidth == pytest.approx(2 * Gbps)
    assert mon.last_sample_time == 0.0


def test_periodic_sampling_follows_schedule(engine):
    sched = BandwidthSchedule([(0.0, 1 * Gbps), (7.0, 3 * Gbps)])
    link = _link(engine, sched)
    mon = BandwidthMonitor(engine, link, interval=5.0)
    engine.run(until=12.0)
    times = [t for t, _ in mon.history]
    values = [v for _, v in mon.history]
    assert times == [0.0, 5.0, 10.0]
    assert values[0] == pytest.approx(1 * Gbps)
    assert values[1] == pytest.approx(1 * Gbps)
    assert values[2] == pytest.approx(3 * Gbps)


def test_monitor_is_stale_between_samples(engine):
    """The monitor only sees bandwidth changes at its next sample."""
    sched = BandwidthSchedule([(0.0, 1 * Gbps), (1.0, 9 * Gbps)])
    link = _link(engine, sched)
    mon = BandwidthMonitor(engine, link, interval=5.0)
    engine.run(until=2.0)
    assert mon.bandwidth == pytest.approx(1 * Gbps)  # change not yet observed


def test_stop_halts_sampling(engine):
    link = _link(engine, BandwidthSchedule.constant(1 * Gbps))
    mon = BandwidthMonitor(engine, link, interval=1.0)
    engine.run(until=2.5)
    mon.stop()
    engine.run(until=10.0)
    assert mon.last_sample_time <= 3.0


def test_noise_needs_rng(engine):
    link = _link(engine, BandwidthSchedule.constant(1 * Gbps))
    with pytest.raises(ConfigurationError):
        BandwidthMonitor(engine, link, noise_std=0.1)


def test_noisy_samples_vary(engine):
    link = _link(engine, BandwidthSchedule.constant(1 * Gbps))
    mon = BandwidthMonitor(engine, link, interval=1.0, noise_std=0.1, rng=make_rng(5))
    engine.run(until=6.0)
    values = [v for _, v in mon.history]
    assert len(set(values)) > 1
    assert all(0.5 * Gbps < v < 1.5 * Gbps for v in values)


def test_invalid_interval_raises(engine):
    link = _link(engine, BandwidthSchedule.constant(1 * Gbps))
    with pytest.raises(ConfigurationError):
        BandwidthMonitor(engine, link, interval=0.0)


def test_history_bounded_by_max_history(engine):
    link = _link(engine, BandwidthSchedule.constant(1 * Gbps))
    mon = BandwidthMonitor(engine, link, interval=1.0, max_history=3)
    engine.run(until=20.0)
    assert len(mon.history) == 3
    assert [t for t, _ in mon.history] == [18.0, 19.0, 20.0]  # newest kept
    assert mon.last_sample_time == 20.0


def test_invalid_max_history_raises(engine):
    link = _link(engine, BandwidthSchedule.constant(1 * Gbps))
    with pytest.raises(ConfigurationError):
        BandwidthMonitor(engine, link, max_history=0)


def test_stop_cancels_pending_sample_so_queue_drains(engine):
    link = _link(engine, BandwidthSchedule.constant(1 * Gbps))
    mon = BandwidthMonitor(engine, link, interval=1.0)
    engine.run(until=2.5)
    mon.stop()
    engine.run()  # unbounded: would tick forever if the event survived
    assert engine.now == 2.5  # cancelled events never advance the clock
    assert mon.last_sample_time == 2.0


def test_sample_age_tracks_clock(engine):
    link = _link(engine, BandwidthSchedule.constant(1 * Gbps))
    mon = BandwidthMonitor(engine, link, interval=5.0)
    engine.run(until=3.0)
    assert mon.sample_age() == pytest.approx(3.0)
    engine.run(until=6.0)  # tick at t=5
    assert mon.sample_age() == pytest.approx(1.0)


def test_prophet_reads_stale_monitor_sample_until_next_tick(
    engine, tiny_model, tiny_device
):
    """Square-wave bandwidth: between monitor ticks Prophet plans against
    the stale pre-drop sample; the tick after the drop it converges and
    the collapse detector fires."""
    from repro.agg.kvstore import KVStore
    from repro.core.profiler import JobProfile
    from repro.models.compute import build_compute_profile
    from repro.sched.prophet_sched import ProphetScheduler

    square = BandwidthSchedule(
        [(0.0, 4 * Gbps), (3.0, 0.1 * Gbps), (6.0, 4 * Gbps)]
    )
    link = _link(engine, square)
    mon = BandwidthMonitor(engine, link, interval=2.0)
    gen = KVStore().generation_schedule(
        build_compute_profile(tiny_model, tiny_device, batch_size=8)
    )
    sched = ProphetScheduler(
        bandwidth_provider=lambda: mon.bandwidth,
        profile=JobProfile.from_generation_schedule(gen),
        collapse_factor=0.25,
    )

    engine.run(until=3.5)  # the wave dropped at t=3.0 ...
    sched.begin_iteration(0, gen, engine.now)
    # ... but the last sample (t=2.0) predates the drop: Prophet still
    # sees the high value and does not degrade.
    assert mon.bandwidth == pytest.approx(4 * Gbps)
    assert not sched.degraded

    engine.run(until=4.5)  # monitor tick at t=4.0 observes the drop
    assert mon.bandwidth == pytest.approx(0.1 * Gbps)
    import numpy as np

    for g in np.argsort(gen.c):
        sched.gradient_ready(int(g), engine.now)
    while True:
        unit = sched.propose_unit(engine.now)
        if unit is None:
            break
        sched.commit_unit(unit, engine.now)
    sched.end_iteration(0, engine.now, engine.now)
    sched.begin_iteration(1, gen, engine.now)
    assert sched.degraded and sched.collapse_detections == 1


def test_cleared_history_degrades_to_last_estimate(engine):
    """Regression: reading a monitor whose history was cleared externally
    used to surface a bare ``IndexError`` (later a ``SimulationError``);
    it now degrades gracefully to the last known estimate — a mid-run
    chaos experiment must not die because an analysis pass emptied the
    sample window."""
    link = Link(engine, BandwidthSchedule.constant(1 * Gbps), TCPParams(),
                name="worker0-up")
    mon = BandwidthMonitor(engine, link, interval=1.0)
    before = mon.bandwidth
    mon.history.clear()
    assert mon.bandwidth == before
    assert mon.last_sample_time == 0.0
    assert mon.sample_age() == 0.0


def test_never_sampled_monitor_raises(engine):
    """Only a monitor that somehow never sampled at all raises (not
    reachable through the constructor; pins the diagnosable error)."""
    from repro.errors import SimulationError

    link = Link(engine, BandwidthSchedule.constant(1 * Gbps), TCPParams(),
                name="worker0-up")
    mon = BandwidthMonitor(engine, link, interval=1.0)
    mon.history.clear()
    mon._last = None
    with pytest.raises(SimulationError, match="worker0-up"):
        _ = mon.bandwidth
    with pytest.raises(SimulationError, match="no\\s+samples"):
        _ = mon.last_sample_time
